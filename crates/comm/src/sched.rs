//! Event-driven rank scheduler: runs an `n`-rank world on a fixed pool of
//! concurrently-executing rank tasks.
//!
//! The legacy backend (`COLOSSAL_WORLD=threads`) lets all `n` device
//! threads run at once, which stops scaling long before the 512–4096-rank
//! worlds the topology presets describe: the host thrashes between
//! hundreds of runnable threads, every rendezvous wakes a stampede, and
//! the OS — not virtual time — decides execution order.
//!
//! Under this scheduler each rank is still an OS thread (its stack *is*
//! the task's resumable state), but at most `pool` of them hold a *running
//! slot* at any instant. Everyone else is parked: either **ready** in a
//! central event queue ordered by `(virtual_time, rank)`, or **blocked**
//! on a rendezvous/mailbox condvar with its slot released. Every
//! rendezvous wait, point-to-point wait and clock advance is a yield
//! point, so execution follows virtual-time order — the rank furthest
//! behind in simulated time runs next, exactly like a discrete-event
//! simulator's event loop.
//!
//! # Admission batching
//!
//! Re-queueing a woken rank does **not** take the central state lock
//! directly. [`Scheduler::enqueue_ready`] pushes the `(vtime, rank)` key
//! into a small `pending` buffer and only drains it into the ready heap
//! when the state lock is uncontended; every other state-lock acquisition
//! drains the buffer first. When a rendezvous release (or an abort) wakes
//! a burst of G ranks at once, one of them — whichever wins the
//! uncontended `try_lock` — re-queues the whole burst under a single lock
//! acquisition while the rest observe their `queued` flag clear and go
//! straight to their grant slot. Without this, G woken ranks serialized
//! through G heap-push lock acquisitions per collective.
//!
//! Grant parking is likewise off the central lock: each rank waits on its
//! own [`GrantSlot`] (a leaf mutex + condvar), so granting a slot touches
//! only the chosen rank's slot, never a shared wait queue.
//!
//! Lock order: `state` → `pending`, `state` → `GrantSlot::m`. The slot
//! and pending mutexes are leaves; no scheduler path acquires resource
//! (mailbox/group) locks, so `begin_block` stays safe to call with a
//! resource lock held.
//!
//! # Determinism
//!
//! Scheduling never touches data: collectives reduce in canonical rank
//! order behind a rendezvous barrier, mailboxes are keyed FIFO per
//! `(from, to, tag)`, and per-device clocks are pure functions of the work
//! charged. The scheduler only decides *when* each rank executes, so
//! losses, clocks, traffic stats and (with the lane-based tracer) trace
//! snapshots are bitwise identical for every pool size and for the legacy
//! thread-per-rank backend. `tests/world_backend_parity.rs` asserts this.
//!
//! # Panic propagation
//!
//! A panicking rank aborts the whole run: the scheduler raises the abort
//! flag, wakes every parked task (grant slots, mailbox, group
//! rendezvous), and peers unwind with a silent [`AbortRun`] marker
//! (re-raised via `resume_unwind`, which skips the panic hook). `run_on`
//! then re-panics with the original rank's message under the existing
//! `"device thread panicked"` contract.

use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Sentinel for "no task is waiting in the ready queue" (greater than any
/// `f64::to_bits` of a finite non-negative clock).
const NO_READY: u64 = u64::MAX;

/// Unwind payload used to abort peer ranks after one rank panicked. Raised
/// with `resume_unwind` so the panic hook stays silent; `run_on` recognizes
/// it and reports only the original panic.
pub(crate) struct AbortRun;

/// The event queue: ranks waiting for a running slot, ordered by
/// `(virtual_time_bits, rank)`. Non-negative `f64` clocks order identically
/// to their IEEE-754 bit patterns, so the key is a plain integer pair.
struct SchedState {
    /// Maximum number of ranks holding a running slot.
    pool: usize,
    /// Ranks currently holding a slot.
    running: usize,
    /// Ready tasks, min-first by `(clock bits, rank)`.
    ready: BinaryHeap<Reverse<(u64, usize)>>,
}

/// One rank's private admission parking spot. `m` guards nothing but the
/// wait itself; the actual grant is the rank's `granted` atomic, checked
/// under `m` so the set-flag → lock → notify sequence in
/// [`Scheduler::grant_locked`] cannot lose a wakeup.
struct GrantSlot {
    m: Mutex<()>,
    cv: Condvar,
}

/// Central scheduler of one `World::run_on` call. Shared by every rank's
/// [`crate::DeviceCtx`]; dropped when the run completes.
pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    /// Re-queue buffer: `(clock bits, rank)` keys pushed by
    /// [`Scheduler::enqueue_ready`], drained into `ready` by the next
    /// state-lock holder.
    pending: Mutex<Vec<(u64, usize)>>,
    /// `queued[r]` — rank `r` has an entry in `pending` not yet drained.
    /// Set under the pending lock, cleared by the drainer; a pusher that
    /// sees its flag clear knows a peer re-queued it and skips the state
    /// lock entirely.
    queued: Vec<AtomicBool>,
    /// `granted[r]` — rank `r` holds a running slot.
    granted: Vec<AtomicBool>,
    /// Per-rank admission parking; granting wakes exactly the chosen task.
    slots: Vec<GrantSlot>,
    /// Raised once any rank panics; every wait loop checks it.
    pub(crate) abort: AtomicBool,
    /// Clock bits of the earliest ready task ([`NO_READY`] when the queue
    /// is empty): the lock-free gate that keeps [`Scheduler::maybe_yield`]
    /// to a single relaxed load on the hot path. `enqueue_ready` lowers it
    /// eagerly (before the drain) so the gate stays conservative.
    min_ready: AtomicU64,
}

impl Scheduler {
    /// Creates the scheduler for `n` ranks on `pool` slots (clamped to at
    /// least 1) and grants the initial slots in rank order.
    pub(crate) fn new(n: usize, pool: usize) -> Arc<Scheduler> {
        let mut ready = BinaryHeap::with_capacity(n);
        for rank in 0..n {
            ready.push(Reverse((0u64, rank)));
        }
        let sched = Scheduler {
            state: Mutex::new(SchedState {
                pool: pool.max(1),
                running: 0,
                ready,
            }),
            pending: Mutex::new(Vec::new()),
            queued: (0..n).map(|_| AtomicBool::new(false)).collect(),
            granted: (0..n).map(|_| AtomicBool::new(false)).collect(),
            slots: (0..n)
                .map(|_| GrantSlot {
                    m: Mutex::new(()),
                    cv: Condvar::new(),
                })
                .collect(),
            abort: AtomicBool::new(false),
            min_ready: AtomicU64::new(0),
        };
        {
            let mut st = sched.state.lock();
            sched.admit_locked(&mut st);
        }
        Arc::new(sched)
    }

    /// Acquires the state lock and drains any pending re-queues first, so
    /// every holder observes a complete ready heap.
    fn lock_state(&self) -> parking_lot::MutexGuard<'_, SchedState> {
        let mut st = self.state.lock();
        self.drain_pending_locked(&mut st);
        st
    }

    /// Moves every buffered `(vtime, rank)` key into the ready heap and
    /// clears the owners' `queued` flags. Called under the state lock.
    fn drain_pending_locked(&self, st: &mut SchedState) {
        let batch = {
            let mut p = self.pending.lock();
            if p.is_empty() {
                return;
            }
            std::mem::take(&mut *p)
        };
        for (key, rank) in batch {
            st.ready.push(Reverse((key, rank)));
            self.queued[rank].store(false, Ordering::Release);
        }
    }

    /// Grants free slots to the earliest ready tasks and refreshes the
    /// `min_ready` gate. Called under the state lock after every change to
    /// `running` or `ready`.
    fn admit_locked(&self, st: &mut SchedState) {
        while st.running < st.pool {
            let Some(Reverse((_, rank))) = st.ready.pop() else {
                break;
            };
            st.running += 1;
            self.grant_locked(rank);
        }
        let min = st.ready.peek().map_or(NO_READY, |Reverse((k, _))| *k);
        self.min_ready.store(min, Ordering::Relaxed);
    }

    /// Hands `rank` a slot and wakes it: flag first, then lock-and-drop its
    /// grant mutex, then notify. The parker re-checks the flag under that
    /// mutex, so the wakeup cannot be lost whether it is already waiting or
    /// still on its way to the slot.
    fn grant_locked(&self, rank: usize) {
        self.granted[rank].store(true, Ordering::Release);
        drop(self.slots[rank].m.lock());
        self.slots[rank].cv.notify_one();
    }

    /// Parks `rank` on its grant slot until it holds a running slot.
    /// Returns without a slot when the run is aborting; the caller must
    /// check the abort flag.
    fn wait_granted(&self, rank: usize) {
        let mut g = self.slots[rank].m.lock();
        while !self.granted[rank].load(Ordering::Acquire) {
            if self.abort.load(Ordering::Relaxed) {
                return;
            }
            self.slots[rank].cv.wait(&mut g);
        }
    }

    /// Marks `rank` ready at `vtime` without insisting on the state lock:
    /// the key goes into the pending buffer, and the rank only drains it
    /// itself if the state lock is free. Otherwise the current holder (or
    /// the next acquirer) drains the whole buffer in one acquisition —
    /// that's the admission batch. Returns once the entry is in the ready
    /// heap (flag cleared) or the run is aborting.
    fn enqueue_ready(&self, rank: usize, vtime: f64) {
        let key = vtime.to_bits();
        {
            let mut p = self.pending.lock();
            p.push((key, rank));
            self.queued[rank].store(true, Ordering::Release);
        }
        self.min_ready.fetch_min(key, Ordering::Relaxed);
        // Either a state-lock holder drains us, or we acquire it ourselves
        // once free. Bounded: every acquisition drains the whole buffer.
        while self.queued[rank].load(Ordering::Acquire) {
            if self.abort.load(Ordering::Relaxed) {
                return;
            }
            if let Some(mut st) = self.state.try_lock() {
                self.drain_pending_locked(&mut st);
                self.admit_locked(&mut st);
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Parks until `rank` holds a running slot (initial admission). Returns
    /// without a slot when the run is aborting; the caller must check the
    /// abort flag.
    pub(crate) fn wait_admitted(&self, rank: usize) {
        self.wait_granted(rank);
    }

    /// Running → blocked: releases the slot before the caller parks on a
    /// resource condvar (rendezvous, mailbox), letting the next ready task
    /// run. Safe to call with the resource lock held: the scheduler locks
    /// are leaves — no scheduler path acquires resource locks.
    pub(crate) fn begin_block(&self, rank: usize) {
        let mut st = self.lock_state();
        debug_assert!(
            self.granted[rank].load(Ordering::Relaxed),
            "begin_block without a slot"
        );
        self.granted[rank].store(false, Ordering::Release);
        st.running -= 1;
        self.admit_locked(&mut st);
    }

    /// Blocked → ready at `vtime` → parks until readmitted. Must be called
    /// with every resource lock released (the caller uses
    /// `MutexGuard::unlocked`). Returns slot-less when aborting.
    pub(crate) fn end_block(&self, rank: usize, vtime: f64) {
        self.enqueue_ready(rank, vtime);
        self.wait_granted(rank);
    }

    /// Cooperative yield at a clock-advance point: if a ready task waits at
    /// an earlier virtual time, hand it the slot and requeue. One relaxed
    /// load when nobody earlier is waiting — cheap enough for every
    /// `advance` call.
    #[inline]
    pub(crate) fn maybe_yield(&self, rank: usize, vtime: f64) {
        if self.min_ready.load(Ordering::Relaxed) < vtime.to_bits() {
            self.yield_slot(rank, vtime);
        }
    }

    #[cold]
    fn yield_slot(&self, rank: usize, vtime: f64) {
        let key = (vtime.to_bits(), rank);
        {
            let mut st = self.lock_state();
            // the gate is racy by design; recheck under the lock
            if !self.granted[rank].load(Ordering::Relaxed)
                || st.ready.peek().is_none_or(|Reverse(k)| *k >= key)
            {
                return;
            }
            self.granted[rank].store(false, Ordering::Release);
            st.running -= 1;
            st.ready.push(Reverse(key));
            self.admit_locked(&mut st);
        }
        self.wait_granted(rank);
    }

    /// Releases `rank`'s slot when its closure returns (or unwinds) and
    /// admits the next ready task. Idempotent for slot-less tasks (aborted
    /// before admission).
    pub(crate) fn task_done(&self, rank: usize) {
        let mut st = self.lock_state();
        if self.granted[rank].swap(false, Ordering::AcqRel) {
            st.running -= 1;
        }
        self.admit_locked(&mut st);
    }

    /// Raises the abort flag and wakes every task parked on a grant slot.
    /// Resource condvars (mailbox, groups) are woken separately by
    /// `WorldInner::abort_wake`. Locking each slot mutex before notifying
    /// closes the check-then-wait race in [`Scheduler::wait_granted`];
    /// spinners in [`Scheduler::enqueue_ready`] exit on the flag alone.
    pub(crate) fn abort_all(&self) {
        self.abort.store(true, Ordering::SeqCst);
        for slot in &self.slots {
            drop(slot.m.lock());
            slot.cv.notify_all();
        }
    }
}

// ---- stackless task executor -----------------------------------------

/// Task is in the ready heap (exactly one entry), waiting for a worker.
const TASK_QUEUED: u8 = 0;
/// A worker is inside the task's `poll` right now.
const TASK_RUNNING: u8 = 1;
/// The task returned `Pending` and sits parked on its wake key.
const TASK_BLOCKED: u8 = 2;
/// The task returned `Ready` (or unwound); it is never polled again.
const TASK_DONE: u8 = 3;

/// The poll-driven twin of [`Scheduler`]: runs `n` stackless
/// [`crate::task::RankTask`]s on a pool of worker threads, keeping the
/// same `(virtual_time_bits, rank)` ready ordering — but here the ready
/// heap holds *tasks* (small heap structs), not parked OS threads, so
/// peak thread count is O(pool) regardless of world size.
///
/// # Wake protocol
///
/// Each task carries a state byte and a `notified` latch. A waker (p2p
/// sender, rendezvous publisher/drainer, abort) calls [`TaskWaker::wake`]:
/// set `notified`, then CAS `BLOCKED -> QUEUED`; only the CAS winner
/// pushes the heap entry, so a task never has two entries. The worker
/// that observes `Pending` parks the task with `BLOCKED` *after* the op
/// registered itself under the resource's lock, then re-checks
/// `notified`: a wake that raced the park is thereby latched and
/// immediately requeues the task. Spurious re-polls are allowed (ops
/// re-check their predicate, like condvar waiters); lost wakes are
/// impossible.
///
/// Lock order: resource (mailbox / group slot) → `ready`. The ready heap
/// is a leaf lock; no waker path acquires a resource lock.
/// A 4-ary min-heap of `(clock bits, rank)` ready keys. The ordering is
/// total, so the pop sequence is identical to any binary heap's — heap
/// shape cannot affect determinism — but the wider fan-out halves the tree
/// depth and packs all four children of a node into one cache line
/// (4 x 16 bytes). With 16k ranks queued the heap array outgrows L1/L2,
/// and sift-downs walk scattered child pairs in a binary heap; here each
/// level costs one line touch, which keeps per-activation dispatch flat
/// as worlds grow.
struct ReadyHeap {
    items: Vec<(u64, usize)>,
}

impl ReadyHeap {
    fn with_capacity(n: usize) -> ReadyHeap {
        ReadyHeap {
            items: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, key: (u64, usize)) {
        self.items.push(key);
        let mut i = self.items.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.items[parent] <= self.items[i] {
                break;
            }
            self.items.swap(i, parent);
            i = parent;
        }
    }

    fn pop(&mut self) -> Option<(u64, usize)> {
        if self.items.is_empty() {
            return None;
        }
        let min = self.items.swap_remove(0);
        let mut i = 0;
        loop {
            let first = i * 4 + 1;
            if first >= self.items.len() {
                break;
            }
            let mut smallest = first;
            for c in first + 1..(first + 4).min(self.items.len()) {
                if self.items[c] < self.items[smallest] {
                    smallest = c;
                }
            }
            if self.items[i] <= self.items[smallest] {
                break;
            }
            self.items.swap(i, smallest);
            i = smallest;
        }
        Some(min)
    }
}

pub(crate) struct TaskWaker {
    /// Ready tasks, min-first by `(clock bits, rank)` — the same ordering
    /// the thread-backed scheduler admits in, so execution follows
    /// virtual time.
    ready: Mutex<ReadyHeap>,
    /// Workers park here when the heap is empty but tasks remain live.
    ready_cv: Condvar,
    state: Vec<AtomicU8>,
    /// Latched wake: set before the requeue CAS, re-checked by the worker
    /// after parking, so wake-vs-park races resolve toward a (harmless)
    /// spurious poll instead of a lost wakeup.
    notified: Vec<AtomicBool>,
    /// Each task's virtual clock — written by its `DeviceCtx`, read by
    /// wakers to key the heap entry. One contiguous array (8 adjacent
    /// ranks per cache line) rather than per-rank `Arc` cells: wakes and
    /// clock updates in big worlds then walk warm lines instead of 16k
    /// scattered allocations.
    clocks: Box<[AtomicU64]>,
    /// Raised once any task panics; every poll entry checks it.
    pub(crate) abort: AtomicBool,
    /// Tasks not yet `TASK_DONE`; workers exit when it hits zero.
    live: AtomicUsize,
}

impl TaskWaker {
    /// Creates the executor for `n` tasks, all ready at virtual time 0 in
    /// rank order.
    pub(crate) fn new(n: usize) -> Arc<TaskWaker> {
        let mut ready = ReadyHeap::with_capacity(n);
        for rank in 0..n {
            ready.push((0u64, rank));
        }
        Arc::new(TaskWaker {
            ready: Mutex::new(ready),
            ready_cv: Condvar::new(),
            state: (0..n).map(|_| AtomicU8::new(TASK_QUEUED)).collect(),
            notified: (0..n).map(|_| AtomicBool::new(false)).collect(),
            clocks: (0..n).map(|_| AtomicU64::new(0.0f64.to_bits())).collect(),
            abort: AtomicBool::new(false),
            live: AtomicUsize::new(n),
        })
    }

    /// Current clock bits of `rank` (the heap key a wake would use).
    pub(crate) fn clock_bits(&self, rank: usize) -> u64 {
        self.clocks[rank].load(Ordering::Relaxed)
    }

    /// Sets `rank`'s clock bits — called only by `rank`'s own `DeviceCtx`.
    pub(crate) fn set_clock_bits(&self, rank: usize, bits: u64) {
        self.clocks[rank].store(bits, Ordering::Relaxed);
    }

    /// Wakes `rank`: requeues it if parked, or latches the notification if
    /// it is mid-poll (the worker converts the latch into a requeue when
    /// it tries to park). Safe to call with a resource lock held and for
    /// any task state — including spuriously.
    pub(crate) fn wake(&self, rank: usize) {
        self.notified[rank].store(true, Ordering::SeqCst);
        self.try_requeue(rank);
    }

    /// BLOCKED → QUEUED; the CAS winner owns the (single) heap entry.
    fn try_requeue(&self, rank: usize) {
        if self.state[rank]
            .compare_exchange(
                TASK_BLOCKED,
                TASK_QUEUED,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            self.notified[rank].store(false, Ordering::SeqCst);
            let key = self.clocks[rank].load(Ordering::Relaxed);
            let mut heap = self.ready.lock();
            heap.push((key, rank));
            drop(heap);
            self.ready_cv.notify_one();
        }
    }

    /// Pops the earliest ready task, parking (via `on_park`/`on_unpark`
    /// bracketing each condvar wait, for the world's thread gauges) while
    /// none is ready. Returns `None` once every task is done.
    pub(crate) fn next_ready(&self, on_park: impl Fn(), on_unpark: impl Fn()) -> Option<usize> {
        let mut heap = self.ready.lock();
        loop {
            if let Some((_, rank)) = heap.pop() {
                self.state[rank].store(TASK_RUNNING, Ordering::SeqCst);
                return Some(rank);
            }
            if self.live.load(Ordering::SeqCst) == 0 {
                return None;
            }
            on_park();
            self.ready_cv.wait(&mut heap);
            on_unpark();
        }
    }

    /// The rank most likely to be dispatched next (the current heap
    /// minimum), so a worker can prefetch its cold task state while the
    /// current poll runs. Purely advisory: wakes and other workers may pop
    /// a different rank first, and a stale hint costs one wasted prefetch.
    pub(crate) fn next_hint(&self) -> Option<usize> {
        self.ready.lock().items.first().map(|&(_, rank)| rank)
    }

    /// Parks `rank` after a `Pending` poll. The op registered itself under
    /// the resource lock before returning, so any wake since then either
    /// lost the requeue CAS (we were still RUNNING) and left `notified`
    /// set — converted into an immediate requeue here — or arrives later
    /// and wins the CAS itself.
    pub(crate) fn park(&self, rank: usize) {
        self.state[rank].store(TASK_BLOCKED, Ordering::SeqCst);
        if self.notified[rank].load(Ordering::SeqCst) || self.abort.load(Ordering::SeqCst) {
            self.try_requeue(rank);
        }
    }

    /// Retires `rank` after `Ready` (or an unwind). When the last task
    /// retires, every idle worker is woken to exit.
    pub(crate) fn finish(&self, rank: usize) {
        self.state[rank].store(TASK_DONE, Ordering::SeqCst);
        if self.live.fetch_sub(1, Ordering::SeqCst) == 1 {
            // lock-then-notify: serializes against a worker between its
            // empty-heap check and its wait
            drop(self.ready.lock());
            self.ready_cv.notify_all();
        }
    }

    /// Raises the abort flag and requeues every parked task so its next
    /// poll observes the flag and unwinds — the stackless analog of
    /// `Scheduler::abort_all` + `WorldInner::abort_wake`.
    pub(crate) fn abort_all(&self) {
        self.abort.store(true, Ordering::SeqCst);
        for rank in 0..self.state.len() {
            self.try_requeue(rank);
        }
        drop(self.ready.lock());
        self.ready_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn granted_ranks(sched: &Scheduler) -> Vec<usize> {
        (0..sched.granted.len())
            .filter(|&r| sched.granted[r].load(Ordering::Relaxed))
            .collect()
    }

    #[test]
    fn pool_bounds_concurrent_slots() {
        let sched = Scheduler::new(8, 3);
        assert_eq!(sched.state.lock().running, 3);
        // earliest ranks first: keys are (0, rank)
        assert_eq!(granted_ranks(&sched), vec![0, 1, 2]);
    }

    #[test]
    fn block_admits_next_ready_task() {
        let sched = Scheduler::new(4, 1);
        assert_eq!(granted_ranks(&sched), vec![0]);
        sched.begin_block(0);
        assert_eq!(granted_ranks(&sched), vec![1], "slot moves to next rank");
        sched.task_done(1);
        assert_eq!(granted_ranks(&sched), vec![2]);
    }

    #[test]
    fn ready_queue_orders_by_time_then_rank() {
        let sched = Scheduler::new(3, 1);
        // rank 0 runs; 1 and 2 wait at t=0. Block 0, then requeue it at a
        // later time: ranks 1 and 2 must both run before 0 gets a slot.
        sched.begin_block(0);
        assert_eq!(granted_ranks(&sched), vec![1]);
        sched.enqueue_ready(0, 1.0);
        sched.task_done(1);
        assert_eq!(granted_ranks(&sched), vec![2], "t=0 beats t=1");
        sched.task_done(2);
        assert_eq!(granted_ranks(&sched), vec![0]);
    }

    #[test]
    fn min_ready_gate_tracks_queue_head() {
        let sched = Scheduler::new(2, 2);
        assert_eq!(sched.min_ready.load(Ordering::Relaxed), NO_READY);
        sched.begin_block(0);
        sched.state.lock().pool = 1; // shrink so rank 0 queues, not readmits
        sched.enqueue_ready(0, 2.5);
        assert_eq!(sched.min_ready.load(Ordering::Relaxed), 2.5f64.to_bits());
    }

    #[test]
    fn abort_releases_admission_waiters() {
        let sched = Scheduler::new(2, 1);
        let s2 = Arc::clone(&sched);
        let h = std::thread::spawn(move || s2.wait_admitted(1));
        sched.abort_all();
        h.join().unwrap(); // returns (slot-less) instead of hanging
        assert!(sched.abort.load(Ordering::Relaxed));
    }

    #[test]
    fn burst_requeue_drains_in_one_acquisition() {
        let sched = Scheduler::new(5, 1);
        sched.state.lock().ready.clear(); // ranks 1..5 no longer pre-queued
        let guard = sched.state.lock(); // pin the state lock: pushers must buffer
        let handles: Vec<_> = (1..5)
            .map(|r| {
                let s = Arc::clone(&sched);
                std::thread::spawn(move || s.enqueue_ready(r, 1.0))
            })
            .collect();
        while sched.pending.lock().len() < 4 {
            std::thread::yield_now();
        }
        // all four buffered while the lock was held; none could drain yet
        assert!((1..5).all(|r| sched.queued[r].load(Ordering::Relaxed)));
        drop(guard);
        for h in handles {
            h.join().unwrap();
        }
        // whichever pusher won the lock drained the whole burst at once
        assert!(sched.pending.lock().is_empty());
        assert!((1..5).all(|r| !sched.queued[r].load(Ordering::Relaxed)));
        // pool=1 and rank 0 still holds the slot, so all four sit ready
        assert_eq!(sched.state.lock().ready.len(), 4);
    }

    #[test]
    fn task_waker_orders_by_time_then_rank() {
        let w = TaskWaker::new(3);
        // all three seeded at t=0: pop in rank order
        assert_eq!(w.next_ready(|| {}, || {}), Some(0));
        assert_eq!(w.next_ready(|| {}, || {}), Some(1));
        assert_eq!(w.next_ready(|| {}, || {}), Some(2));
        // park 0 at t=2.0 and 1 at t=1.0; wake both: 1 runs first
        w.set_clock_bits(0, 2.0f64.to_bits());
        w.set_clock_bits(1, 1.0f64.to_bits());
        w.park(0);
        w.park(1);
        w.wake(0);
        w.wake(1);
        assert_eq!(w.next_ready(|| {}, || {}), Some(1), "t=1 beats t=2");
        assert_eq!(w.next_ready(|| {}, || {}), Some(0));
    }

    #[test]
    fn task_waker_latches_wake_during_poll() {
        // a wake that lands while the task is RUNNING (mid-poll) must not
        // be lost: park() converts the latched notify into a requeue
        let w = TaskWaker::new(1);
        assert_eq!(w.next_ready(|| {}, || {}), Some(0)); // now RUNNING
        w.wake(0); // CAS fails (not BLOCKED); latch stays set
        w.park(0); // Pending observed: latch -> immediate requeue
        assert_eq!(w.next_ready(|| {}, || {}), Some(0), "wake was latched");
    }

    #[test]
    fn task_waker_single_heap_entry_per_task() {
        let w = TaskWaker::new(1);
        assert_eq!(w.next_ready(|| {}, || {}), Some(0));
        w.park(0);
        for _ in 0..5 {
            w.wake(0); // only the first CAS wins; the rest are no-ops
        }
        assert_eq!(w.next_ready(|| {}, || {}), Some(0));
        assert!(w.ready.lock().items.is_empty(), "duplicate heap entries");
    }

    #[test]
    fn task_waker_workers_exit_when_all_done() {
        let w = TaskWaker::new(2);
        assert_eq!(w.next_ready(|| {}, || {}), Some(0));
        w.finish(0);
        assert_eq!(w.next_ready(|| {}, || {}), Some(1));
        w.finish(1);
        assert_eq!(w.next_ready(|| {}, || {}), None);
        // an idle worker parked on the cv is woken by the last finish
        let w2 = TaskWaker::new(1);
        assert_eq!(w2.next_ready(|| {}, || {}), Some(0));
        let w2c = Arc::clone(&w2);
        let h = std::thread::spawn(move || w2c.next_ready(|| {}, || {}));
        w2.finish(0);
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn task_waker_abort_requeues_parked_tasks() {
        let w = TaskWaker::new(2);
        assert_eq!(w.next_ready(|| {}, || {}), Some(0));
        assert_eq!(w.next_ready(|| {}, || {}), Some(1));
        w.park(0);
        w.park(1);
        w.abort_all();
        // both parked tasks come back so their next poll sees the flag
        let mut woken = vec![
            w.next_ready(|| {}, || {}).unwrap(),
            w.next_ready(|| {}, || {}).unwrap(),
        ];
        woken.sort_unstable();
        assert_eq!(woken, vec![0, 1]);
        // a task parking *after* the abort is immediately requeued too
        w.park(0);
        assert_eq!(w.next_ready(|| {}, || {}), Some(0));
    }
}
