//! ZeRO + heterogeneous offloading demo (Sections 2.1, 2.4, 3.2 / Fig 14):
//! trains a small GPT with ZeRO-3 sharding across 4 simulated GPUs, checks
//! the trajectory against plain data-parallel AdamW, and contrasts the
//! static vs adaptive placement policies on the paper's GPT-2 10B setup.
//!
//! Run with: `cargo run --release --example gpt_zero_offload`

use colossalai::comm::World;
use colossalai::memory::offload::{plan, ModelData, PlacementPolicy};
use colossalai::models::data::SyntheticText;
use colossalai::models::{Gpt, TransformerConfig};
use colossalai::parallel::data_parallel::flatten_params;
use colossalai::parallel::zero::{model_data_bytes_per_device, ZeroOptimizer, ZeroStage};
use colossalai::tensor::init;
use colossalai::topology::systems::system_ii;
use colossalai_autograd::Layer;

fn main() {
    let cfg = TransformerConfig {
        layers: 2,
        hidden: 8,
        heads: 2,
        mlp_ratio: 2,
        vocab: 17,
        max_seq: 6,
    };
    let data = SyntheticText::new(cfg.vocab, 3);
    let p = 4;

    // --- ZeRO-3 training on 4 simulated GPUs -----------------------------
    let world = World::new(system_ii());
    let results = world.run_on(p, |ctx| {
        let g = ctx.world_group(p);
        let mut rng = init::rng(2024);
        let mut gpt = Gpt::new(&cfg, &mut rng);
        let mut opt = ZeroOptimizer::new(ctx, &g, &mut gpt, ZeroStage::Three, 0.01, 0.0);
        let mut losses = Vec::new();
        for step in 0..10u64 {
            opt.materialize_params(&mut gpt);
            // each rank trains on its own batch slice
            let tokens = data.batch(p, cfg.max_seq, step);
            let local = tokens.chunk(0, p).swap_remove(g.rank());
            let (loss, dlogits) = gpt.lm_loss(&local);
            losses.push(loss);
            let _ = gpt.backward(&dlogits);
            opt.step(&mut gpt);
        }
        (losses, flatten_params(&mut gpt))
    });
    println!("ZeRO-3 GPT loss curve (rank 0): {:?}", results[0].0);
    assert!(
        results[0].0.last().unwrap() < &results[0].0[0],
        "LM loss must fall"
    );
    // replicas agree bitwise
    assert_eq!(results[0].1.data(), results[3].1.data());
    println!("all ZeRO-3 ranks hold identical parameters after 10 steps — OK");

    // --- memory & placement at paper scale --------------------------------
    let gpt10b = TransformerConfig::gpt2_10b();
    let n = gpt10b.transformer_params();
    println!("\nGPT-2 10B model data per device (fp16 + fp32 Adam states):");
    for (stage, label) in [
        (ZeroStage::One, "ZeRO-1"),
        (ZeroStage::Two, "ZeRO-2"),
        (ZeroStage::Three, "ZeRO-3"),
    ] {
        let bytes = model_data_bytes_per_device(stage, n, 8);
        println!(
            "  {label} over 8 GPUs: {:.1} GiB",
            bytes as f64 / (1u64 << 30) as f64
        );
    }

    let capacity = 80u64 << 30;
    let working = 10u64 << 30;
    let model = ModelData {
        n_params: n,
        dp_degree: 8,
    };
    let static_plan = plan(PlacementPolicy::StaticCpu, model, capacity, working);
    let adaptive_plan = plan(PlacementPolicy::Adaptive, model, capacity, working);
    println!("\nper-step PCIe traffic (batch small enough to leave headroom):");
    println!(
        "  DeepSpeed static : h2d {:.1} GiB, d2h {:.1} GiB, {} params on CPU Adam",
        static_plan.h2d_per_step as f64 / (1u64 << 30) as f64,
        static_plan.d2h_per_step as f64 / (1u64 << 30) as f64,
        static_plan.cpu_adam_params
    );
    println!(
        "  Colossal adaptive: h2d {:.1} GiB, d2h {:.1} GiB, {} params on CPU Adam",
        adaptive_plan.h2d_per_step as f64 / (1u64 << 30) as f64,
        adaptive_plan.d2h_per_step as f64 / (1u64 << 30) as f64,
        adaptive_plan.cpu_adam_params
    );
    assert!(adaptive_plan.h2d_per_step < static_plan.h2d_per_step);
    println!("\nadaptive placement eliminates the static policy's PCIe streaming — OK");
}
