//! Wall-clock benchmark of the persistent intra-op worker pool
//! (`tensor::par`) against the spawn-per-call threading it replaced, on the
//! `dp_overlap` workload: 16 data-parallel ranks on System III training the
//! same 4x256x256 MLP with overlapped bucketed gradient sync and AdamW.
//!
//! Two backends for the *same partition of the same arithmetic*:
//!
//! * **pool** — the production path: every threaded kernel (GEMM row
//!   panels, `for_each_batch` sweeps, elementwise/optimizer chunks) submits
//!   its deterministic task list to the parked `colossal-par-*` workers.
//! * **spawn** — the pre-pool path (`COLOSSAL_PAR=off`): the identical row
//!   panels run under `std::thread::scope`, paying a fresh OS thread spawn
//!   + join on every kernel call.
//!
//! The batch is sized so the hidden-layer GEMMs (16x256x256 per rank) clear
//! `par_flop_cutoff`, i.e. both modes really do thread the hot kernels.
//! The interesting number is *host* time: spawn/join traffic is invisible
//! to the virtual clock. Both backends partition work identically
//! (`par::partition` depends only on size and budget), so the run is
//! bitwise-identical end to end — asserted on the final parameters.
//!
//! Rounds are interleaved (spawn, pool, spawn, pool, ...) so slow drift on
//! a shared host hits both modes equally; each mode reports its
//! best-of-[`ROUNDS`] step time, measured over the step loop only.
//!
//! `--json` prints one machine-readable object (used by the CI smoke):
//! `{"pooled_steps_per_s": .., "spawn_steps_per_s": .., "speedup": ..,
//!   "par_util": .., "bitwise_identical": ..}`.

use colossalai_autograd::Layer;
use colossalai_bench::print_table;
use colossalai_comm::{DeviceCtx, World};
use colossalai_parallel::data_parallel::{flatten_params, split_batch, DataParallel};
use colossalai_parallel::DEFAULT_BUCKET_BYTES;
use colossalai_tensor::ops::cross_entropy;
use colossalai_tensor::{init, par};
use colossalai_topology::systems::system_iii;
use std::time::Instant;

const P: usize = 16;
const STEPS: usize = 6;
const HIDDEN: usize = 256;
const LAYERS: usize = 4;
const ROUNDS: usize = 5;
/// Per-rank batch rows; 16x256x256 MACs per hidden GEMM clears the default
/// `par_flop_cutoff` of 64^3 so the kernels thread in both modes.
const LOCAL_ROWS: usize = 16;

fn make_model(seed: u64) -> colossalai_autograd::Sequential {
    use colossalai_autograd::{Linear, Sequential};
    let mut rng = init::rng(seed);
    let mut dims = vec![("in".to_string(), 32, HIDDEN)];
    for i in 0..LAYERS {
        dims.push((format!("h{i}"), HIDDEN, HIDDEN));
    }
    dims.push(("out".to_string(), HIDDEN, 8));
    let layers: Vec<Box<dyn Layer>> = dims
        .into_iter()
        .map(|(name, d_in, d_out)| {
            Box::new(Linear::from_rng(&name, d_in, d_out, true, &mut rng)) as Box<dyn Layer>
        })
        .collect();
    Sequential::new(layers)
}

/// One full DP training pass (`steps` optimizer steps on every rank) under
/// the given backend. Returns (per-step seconds, rank 0's flat parameters).
/// Setup (world spawn, model init) is identical in both modes and excluded
/// from step time.
fn train_pass(pooled: bool, steps: usize) -> (Vec<f64>, Vec<f32>) {
    par::set_enabled(pooled);
    let world = World::new(system_iii());
    let mut rng = init::rng(7);
    let xs: Vec<_> = (0..steps)
        .map(|_| init::uniform([P * LOCAL_ROWS, 32], -1.0, 1.0, &mut rng))
        .collect();
    let mut out = world.run_on(P, |ctx: &DeviceCtx| {
        let g = ctx.world_group(P);
        let mut dp = DataParallel::with_bucket_bytes(
            ctx,
            &g,
            make_model(11),
            DEFAULT_BUCKET_BYTES.min(HIDDEN * HIDDEN * 2 * 4),
        )
        .with_overlap(true);
        let mut opt = colossalai_autograd::AdamW::new(0.01, 0.01);
        let mut dts = Vec::with_capacity(xs.len());
        for x in &xs {
            let t0 = Instant::now();
            dp.zero_grad();
            let x_local = split_batch(x, P, g.rank());
            let t: Vec<usize> = (0..x_local.dims()[0]).map(|i| i % 8).collect();
            let logits = dp.forward(&x_local);
            let (_, d) = cross_entropy(&logits, &t);
            let _ = dp.backward(&d);
            opt.step_layer(&mut dp);
            dts.push(t0.elapsed().as_secs_f64());
        }
        (dts, flatten_params(&mut dp).into_vec())
    });
    // ranks are in lockstep at every collective: per step, the slowest
    // rank's span is the wall step time
    let steps_dt: Vec<f64> = (0..steps)
        .map(|s| out.iter().map(|(t, _)| t[s]).fold(0.0, f64::max))
        .collect();
    (steps_dt, out.swap_remove(0).1)
}

fn main() {
    // An explicit budget makes the bench meaningful on hosts where
    // COLOSSAL_KERNEL_THREADS is unset (budget 1 would collapse both modes
    // to the identical serial path).
    if colossalai_tensor::kernel_threads() <= 1 {
        colossalai_tensor::set_kernel_threads(4);
    }
    let threads = colossalai_tensor::kernel_threads();

    // Warm-up both backends once (spawns and parks the pool workers; faults
    // allocator arenas) and check the determinism contract end to end, then
    // interleave rounds so slow host drift hits both modes equally.
    // Best-of over rounds filters scheduler noise.
    let (_, spawn_params) = train_pass(false, STEPS);
    let (_, pool_params) = train_pass(true, STEPS);
    let identical = pool_params == spawn_params;
    par::reset_stats();
    let mut best_spawn = f64::INFINITY;
    let mut best_pool = f64::INFINITY;
    for _ in 0..ROUNDS {
        let (dts, p) = train_pass(false, STEPS);
        assert_eq!(p, spawn_params, "training is deterministic");
        best_spawn = dts.into_iter().fold(best_spawn, f64::min);
        let (dts, p) = train_pass(true, STEPS);
        assert_eq!(p, pool_params, "training is deterministic");
        best_pool = dts.into_iter().fold(best_pool, f64::min);
    }
    let stats = par::stats();
    let spawn_sps = 1.0 / best_spawn;
    let pool_sps = 1.0 / best_pool;
    let speedup = pool_sps / spawn_sps;

    if std::env::args().any(|a| a == "--json") {
        println!(
            "{{\"pooled_steps_per_s\": {pool_sps:.3}, \"spawn_steps_per_s\": {spawn_sps:.3}, \
             \"speedup\": {speedup:.3}, \"par_util\": {:.4}, \
             \"bitwise_identical\": {identical}}}",
            stats.util()
        );
        return;
    }

    assert!(identical, "pool backend changed the bits");
    let rows = vec![
        vec![
            "spawn per call".to_string(),
            format!("{:.1}", spawn_sps),
            "-".to_string(),
            "1.00x".to_string(),
        ],
        vec![
            "persistent pool".to_string(),
            format!("{:.1}", pool_sps),
            format!("{:.1}%", stats.util() * 100.0),
            format!("{speedup:.2}x"),
        ],
    ];
    print_table(
        &format!(
            "Persistent intra-op pool vs spawn-per-call, dp_overlap workload \
             ({P} ranks, budget {threads}, best of {ROUNDS}x{STEPS} steps)"
        ),
        &["threading backend", "steps/s (wall)", "par util", "speedup"],
        &rows,
    );
    println!("\npar: {}", stats.summary());
    println!(
        "\nBoth rows run the identical deterministic partition — the pool \
         only changes which OS thread executes each chunk and how it is \
         woken — and the final parameters are asserted bitwise-identical. \
         Set COLOSSAL_PAR=off (the spawn row) or COLOSSAL_KERNEL_THREADS=1 \
         (fully serial) to pick the backend at runtime."
    );
}
