//! Fast-mode numeric properties: the opt-in FMA/bf16 kernels must stay
//! within *explicit ULP budgets* of the deterministic defaults, and the
//! determinism guarantees (serial == threaded, fused == composed) must hold
//! *within* each mode.
//!
//! Budget derivation (DESIGN.md §13):
//! * FMA GEMM vs deterministic GEMM: both accumulate `k` products left to
//!   right; each rounding step contributes at most one half-ULP of the
//!   running magnitude, which is bounded by `absdot = Σ|a_i||b_i|`. The two
//!   modes differ by at most the sum of both accumulation error bounds,
//!   `(2k + 4)` ULPs measured at `absdot` (the `+4` covers the final
//!   store/writeback roundings on both sides).
//! * bf16 GEMM vs deterministic f32 GEMM: each operand is rounded once to
//!   bf16 (8-bit mantissa, relative error ≤ 2⁻⁹), so each product carries
//!   relative error ≤ 2⁻⁸ + 2⁻¹⁸; summed, the error is ≤ ~1.25 bf16-ULPs
//!   of `absdot` (a bf16 ULP at magnitude `x` is `ulp_at(x, 7)` because the
//!   stored mantissa is 7 bits). We budget 2.5 bf16-ULPs plus the f32
//!   accumulation term for slack on carries.
//!
//! Toggling `set_fast_mode` is process-global, so every test here holds one
//! mutex and restores the deterministic default before releasing it. Tests
//! in other binaries run in separate processes and are unaffected.

use std::sync::Mutex;

use colossalai_tensor::ops::{
    add_bias_gelu, add_bias_gelu_backward, gelu, gelu_grad, layernorm, layernorm_fused,
};
use colossalai_tensor::{
    fast_mode, init, kernel_threads, matmul, matmul_at, matmul_at_acc, matmul_bf16, set_fast_mode,
    set_kernel_threads, Tensor,
};
use proptest::prelude::*;

static FAST_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once in deterministic mode and once in fast mode, restoring the
/// deterministic default, all under the toggle lock.
fn with_modes<T>(f: impl Fn() -> T) -> (T, T) {
    let _g = FAST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_fast_mode(false);
    let det = f();
    set_fast_mode(true);
    let fast = f();
    set_fast_mode(false);
    (det, fast)
}

/// Runs `f` with fast mode pinned on, restoring the deterministic default.
fn in_fast<T>(f: impl FnOnce() -> T) -> T {
    let _g = FAST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_fast_mode(true);
    let out = f();
    set_fast_mode(false);
    out
}

/// Spacing between adjacent floats with `mant_bits` stored mantissa bits at
/// magnitude `|x|` (23 → f32 ULP, 7 → bf16 ULP).
fn ulp_at(x: f32, mant_bits: i32) -> f32 {
    let mag = x.abs().max(f32::MIN_POSITIVE);
    let e = mag.log2().floor() as i32;
    2.0f32.powi(e - mant_bits)
}

fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = init::rng(seed);
    init::uniform([rows, cols], -2.0, 2.0, &mut rng)
}

fn row(cols: usize, seed: u64) -> Tensor {
    let mut rng = init::rng(seed);
    init::uniform([cols], -1.0, 1.0, &mut rng)
}

/// Per-element absolute-dot bounds `Σ|a_ik||b_kj|` for `a[m,k] · b[k,n]`.
fn absdot(a: &Tensor, b: &Tensor, m: usize, k: usize, n: usize) -> Vec<f32> {
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p].abs();
            for j in 0..n {
                out[i * n + j] += av * bd[p * n + j].abs();
            }
        }
    }
    out
}

#[test]
fn knob_roundtrip_and_env_resolution() {
    let _g = FAST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_fast_mode(true);
    assert!(fast_mode());
    set_fast_mode(false);
    assert!(!fast_mode());
}

#[test]
fn fast_gemm_within_ulp_budget_of_deterministic() {
    // Shapes straddle the small-GEMM cutoff and the KC=512 k-blocking so
    // both dispatch arms (gemm_small and the packed macrokernel) and the
    // multi-k-block reduction are exercised.
    for &(m, k, n) in &[
        (3usize, 5usize, 4usize),
        (17, 40, 9),
        (33, 130, 65),
        (8, 530, 24),
    ] {
        let a = tensor(m, k, 100 + k as u64);
        let b = tensor(k, n, 200 + k as u64);
        let (det, fast) = with_modes(|| matmul(&a, &b));
        let bound = absdot(&a, &b, m, k, n);
        let budget = (2 * k + 4) as f32;
        for ((d, f), ab) in det.data().iter().zip(fast.data()).zip(&bound) {
            let allowed = budget * ulp_at(*ab, 23);
            assert!(
                (d - f).abs() <= allowed,
                "({m},{k},{n}): |{d} - {f}| > {allowed} (absdot {ab})"
            );
        }
    }
}

#[test]
fn bf16_gemm_within_ulp_budget_of_deterministic() {
    for &(m, k, n) in &[
        (5usize, 7usize, 3usize),
        (33, 70, 17),
        (65, 130, 49),
        (12, 530, 40),
    ] {
        let a = tensor(m, k, 300 + k as u64);
        let b = tensor(k, n, 400 + k as u64);
        let det = matmul(&a, &b);
        let fast = matmul_bf16(&a, &b);
        let bound = absdot(&a, &b, m, k, n);
        for ((d, f), ab) in det.data().iter().zip(fast.data()).zip(&bound) {
            let allowed = 2.5 * ulp_at(*ab, 7) + (2 * k + 4) as f32 * ulp_at(*ab, 23);
            assert!(
                (d - f).abs() <= allowed,
                "({m},{k},{n}): |{d} - {f}| > {allowed} (absdot {ab})"
            );
        }
    }
}

#[test]
fn bf16_gemm_exact_on_bf16_representable_inputs() {
    // Integers up to 2^8 are exactly representable in bf16; small integer
    // dots accumulate exactly in f32, so the bf16 GEMM must be bit-exact.
    let (m, k, n) = (4usize, 6usize, 5usize);
    let mut rng = init::rng(55);
    let a = init::uniform([m, k], -8.0, 8.0, &mut rng).map(|v| v.round());
    let b = init::uniform([k, n], -8.0, 8.0, &mut rng).map(|v| v.round());
    let det = matmul(&a, &b);
    let fast = matmul_bf16(&a, &b);
    assert_eq!(det.data(), fast.data());
}

#[test]
fn fast_mode_is_deterministic_across_thread_counts() {
    // Within fast mode the serial and threaded GEMMs must stay bitwise
    // identical — the mode trades *cross-mode* parity, never determinism.
    let (m, k, n) = (37, 65, 29);
    let a = tensor(m, k, 500);
    let b = tensor(k, n, 501);
    let ambient = kernel_threads();
    let (serial, threaded) = in_fast(|| {
        set_kernel_threads(1);
        let serial = matmul(&a, &b);
        set_kernel_threads(4);
        let threaded = matmul(&a, &b);
        set_kernel_threads(ambient);
        (serial, threaded)
    });
    assert_eq!(serial.data(), threaded.data());

    let (s_bf, t_bf) = {
        let _g = FAST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_kernel_threads(1);
        let s = matmul_bf16(&a, &b);
        set_kernel_threads(4);
        let t = matmul_bf16(&a, &b);
        set_kernel_threads(ambient);
        (s, t)
    };
    assert_eq!(s_bf.data(), t_bf.data());
}

#[test]
fn fused_kernels_stay_composed_identical_within_fast_mode() {
    // The bitwise fused==composed contract of fused_props.rs must survive
    // fast mode: both sides swap to the FMA forms together.
    in_fast(|| {
        for &(rows, cols) in &[(1usize, 1usize), (5, 19), (8, 33)] {
            let x = tensor(rows, cols, 600 + cols as u64);
            let bias = row(cols, 601);
            let composed_h = x.add_bias(&bias);
            let composed_y = gelu(&composed_h);
            let (h, y) = add_bias_gelu(x.clone(), &bias);
            assert_eq!(h.data(), composed_h.data());
            assert_eq!(y.data(), composed_y.data());
            let dy = tensor(rows, cols, 602);
            let fused_dh = add_bias_gelu_backward(&h, &dy);
            let composed_dh = gelu_grad(&composed_h).zip(&dy, |g, d| g * d);
            assert_eq!(fused_dh.data(), composed_dh.data());

            let gamma = row(cols, 603);
            let beta = row(cols, 604);
            let (y0, m0, s0) = layernorm(&x, &gamma, &beta, 1e-5);
            let (y1, m1, s1) = layernorm_fused(&x, &gamma, &beta, 1e-5);
            assert_eq!(y1.data(), y0.data());
            assert_eq!(m1, m0);
            assert_eq!(s1, s0);

            let k = rows.max(2);
            let a = tensor(k, 7, 605);
            let b = tensor(k, 9, 606);
            let g0 = tensor(7, 9, 607);
            let mut composed = g0.clone();
            composed.axpy(1.0, &matmul_at(&a, &b));
            let mut fused = g0;
            matmul_at_acc(&a, &b, &mut fused);
            assert_eq!(fused.data(), composed.data());
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn fast_gemm_budget_holds_on_random_shapes(
        m in 1usize..20, k in 1usize..60, n in 1usize..20, seed in 0u64..1000
    ) {
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed + 1);
        let (det, fast) = with_modes(|| matmul(&a, &b));
        let bound = absdot(&a, &b, m, k, n);
        let budget = (2 * k + 4) as f32;
        for ((d, f), ab) in det.data().iter().zip(fast.data()).zip(&bound) {
            let allowed = budget * ulp_at(*ab, 23);
            prop_assert!((d - f).abs() <= allowed, "|{} - {}| > {}", d, f, allowed);
        }
    }

    #[test]
    fn fast_gelu_within_budget(rows in 1usize..6, cols in 1usize..24, seed in 0u64..1000) {
        // The FMA regrouping perturbs the tanh argument by a few ULPs; tanh
        // is 1-Lipschitz and the output magnitude is bounded by |x|, so a
        // small per-element budget at max(|y|, |x|) covers it.
        let x = tensor(rows, cols, seed);
        let bias = row(cols, seed + 1);
        let (det, fast) = with_modes(|| add_bias_gelu(x.clone(), &bias));
        for ((d, f), xv) in det.1.data().iter().zip(fast.1.data()).zip(x.data()) {
            let allowed = 16.0 * ulp_at(d.abs().max(xv.abs()).max(1e-6), 23);
            prop_assert!((d - f).abs() <= allowed, "|{} - {}| > {}", d, f, allowed);
        }
        let dy = tensor(rows, cols, seed + 2);
        let (dd, df) = with_modes(|| add_bias_gelu_backward(&det.0, &dy));
        for ((d, f), dyv) in dd.data().iter().zip(df.data()).zip(dy.data()) {
            let allowed = 32.0 * ulp_at(d.abs().max(dyv.abs()).max(1e-6), 23);
            prop_assert!((d - f).abs() <= allowed, "|{} - {}| > {}", d, f, allowed);
        }
    }

    #[test]
    fn fast_layernorm_within_budget(rows in 1usize..6, cols in 2usize..32, seed in 0u64..1000) {
        // Mean is identical (the sum is not FMA-regrouped); the variance
        // fold differs by ≤ cols fused roundings, so inv_std carries a
        // relative error of O(cols)·2⁻²⁴ into every normalized element.
        let x = tensor(rows, cols, seed);
        let gamma = row(cols, seed + 1);
        let beta = row(cols, seed + 2);
        let (det, fast) = with_modes(|| layernorm_fused(&x, &gamma, &beta, 1e-5));
        prop_assert_eq!(&det.1, &fast.1, "means must be identical across modes");
        let scale = gamma
            .data()
            .iter()
            .chain(beta.data())
            .fold(1.0f32, |m, v| m.max(v.abs()));
        for (d, f) in det.0.data().iter().zip(fast.0.data()) {
            let allowed = (cols as f32 + 16.0) * ulp_at(d.abs().max(3.0 * scale), 23);
            prop_assert!((d - f).abs() <= allowed, "|{} - {}| > {}", d, f, allowed);
        }
    }
}
