//! # colossalai-comm
//!
//! Collective communication for the simulated cluster.
//!
//! Every simulated GPU is a task holding a [`world::DeviceCtx`].
//! Collectives ([`group::Group`]) move real tensors between tasks — so all
//! distributed arithmetic in the workspace is numerically real — while
//! charging *virtual* time from the alpha-beta ring model of
//! `colossalai-topology` and recording element-hop traffic that matches the
//! closed-form communication volumes of Table 1 in the paper.
//!
//! Rank tasks execute under one of three backends (see
//! [`world::WorldBackend`]): the default event-driven [`sched`]uler, which
//! multiplexes any number of parked rank threads onto a fixed worker pool
//! in virtual-time order; the stackless executor
//! (`COLOSSAL_WORLD=stackless`), which runs each rank as a resumable
//! [`task::RankTask`] state machine so a 16k-rank world needs only
//! O(pool) OS threads; and the legacy thread-per-rank mode
//! (`COLOSSAL_WORLD=threads`). All three produce bitwise-identical
//! results.

pub mod compress;
pub mod group;
pub(crate) mod sched;
pub mod stats;
pub mod task;
pub mod trace;
pub mod workload;
pub mod world;

pub use colossalai_topology::AllReduceAlgo;
pub use compress::Compression;
pub use group::{CollectiveOp, Group, Wire};
pub use stats::{CommStats, OpKind};
pub use task::{Poll, RankTask, WakeKey};
pub use trace::{RankRollup, Span, SpanKind, Track};
pub use workload::{HybridSpec, HybridTask};
pub use world::{DeviceCtx, RecvOp, ThreadStats, WakeStats, World, WorldBackend};
