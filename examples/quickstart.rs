//! Quickstart: the Listing-1 workflow end to end.
//!
//! Builds a simulated 4-GPU cluster, configures data parallelism from a
//! JSON config, and trains a tiny classifier with the
//! `initialize -> zero_grad -> forward -> criterion -> backward -> step`
//! loop of the paper's usage example.
//!
//! Run with: `cargo run --release --example quickstart`

use colossalai::comm::World;
use colossalai::core::{initialize, Config, OptimizerSpec, Trainer};
use colossalai::models::data::SyntheticVision;
use colossalai::tensor::init;
use colossalai::topology::systems::system_i;
use colossalai_autograd::{Gelu, Layer, Linear, Sequential};

fn main() {
    // 1. describe the parallelization declaratively (Listing 1)
    let config = Config::from_json(
        r#"{
            "parallel": { "data": 4 },
            "mixed_precision": false,
            "grad_clip": 1.0
        }"#,
    )
    .expect("valid config");

    // 2. launch the (simulated) distributed environment
    let world = World::new(system_i());
    let n_devices = 4;
    let data = SyntheticVision::new(4, 8, 5, 42);

    let losses = world.run_on(n_devices, |ctx| {
        // 3. define your training components exactly as in serial code
        let mut rng = init::rng(7);
        let model: Box<dyn Layer> = Box::new(Sequential::new(vec![
            Box::new(Linear::from_rng("fc1", 32, 64, true, &mut rng)),
            Box::new(Gelu::new()),
            Box::new(Linear::from_rng("fc2", 64, 5, true, &mut rng)),
        ]));

        // 4. initialize with Colossal-AI
        let engine = initialize(
            ctx,
            &config,
            n_devices,
            model,
            OptimizerSpec::AdamW {
                lr: 0.01,
                weight_decay: 0.01,
            },
        );
        let mut trainer = Trainer::new(engine);

        // 5. run training — each rank takes its slice of the global batch
        let rank = ctx.rank();
        let losses = trainer.fit(30, |step| {
            let (x, t) = data.batch(16, step);
            let x_local = colossalai::parallel::split_batch(&x.reshape([16, 32]), n_devices, rank);
            let t_local = t[rank * 4..(rank + 1) * 4].to_vec();
            (x_local, t_local)
        });
        let params =
            colossalai::parallel::data_parallel::flatten_params(trainer.engine_mut().model_mut());
        (losses, params)
    });

    println!("rank 0 loss curve: {:?}", &losses[0].0);
    let first = losses[0].0.first().copied().unwrap();
    let last = losses[0].0.last().copied().unwrap();
    println!("loss {first:.4} -> {last:.4} over 30 data-parallel steps on 4 simulated GPUs");
    assert!(last < first, "training should reduce the loss");
    // losses differ per rank (each sees its own batch slice), but the
    // gradient all-reduce keeps the *parameters* in perfect lockstep
    for r in 1..n_devices {
        assert_eq!(losses[0].1.data(), losses[r].1.data());
    }
    println!("all 4 replicas hold bitwise-identical parameters (DP lockstep) — OK");
}
