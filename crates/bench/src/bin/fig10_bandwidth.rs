//! E4 — Fig 10: communication bandwidth on Systems I and II, probing
//! 125 MB transfers like the paper's NCCL bandwidth test.

use colossalai_bench::{fmt_bandwidth, print_table};
use colossalai_topology::bandwidth::{pairwise_extremes, probe_collective};
use colossalai_topology::systems::{system_i, system_ii};

const PROBE_BYTES: u64 = 125 << 20;

fn main() {
    // Fig 10a: pairwise bandwidth
    let mut rows = Vec::new();
    for cluster in [system_i(), system_ii()] {
        let (min, max) = pairwise_extremes(&cluster, PROBE_BYTES);
        rows.push(vec![
            cluster.name().to_string(),
            fmt_bandwidth(max),
            fmt_bandwidth(min),
        ]);
    }
    print_table(
        "Fig 10a: GPU-pair bandwidth (125 MB message)",
        &["System", "best pair", "worst pair"],
        &rows,
    );

    // Fig 10b: collective (broadcast) bandwidth over growing groups
    let sizes = [2usize, 4, 8];
    let mut rows = Vec::new();
    for cluster in [system_i(), system_ii()] {
        let probes = probe_collective(&cluster, &sizes, PROBE_BYTES);
        let mut row = vec![cluster.name().to_string()];
        row.extend(probes.iter().map(|p| fmt_bandwidth(p.bandwidth)));
        rows.push(row);
    }
    print_table(
        "Fig 10b: collective broadcast bandwidth (125 MB)",
        &["System", "2 GPUs", "4 GPUs", "8 GPUs"],
        &rows,
    );

    println!(
        "\nPaper reference: System I holds ~184 GB/s at every group size; \
         System II collapses to ~15 GB/s once the group spans a PCIe hop — \
         the topology effect behind Fig 11's mode ranking."
    );
}
