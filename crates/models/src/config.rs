//! Transformer configuration and analytic parameter / FLOPs / memory
//! calculators.
//!
//! The throughput and memory experiments (Figs 8, 11-14, Table 3) run on
//! models far too large to execute numerically, so the bench harnesses use
//! these closed-form calculators — the same arithmetic the paper's authors
//! use to size their runs — while the small runnable models in this crate
//! verify the formulas empirically (the paper configs reuse the identical
//! code path with bigger numbers).

/// Hyper-parameters of a Transformer stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Number of Transformer layers.
    pub layers: usize,
    /// Hidden size `h`.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP expansion ratio (4 in every model the paper uses).
    pub mlp_ratio: usize,
    /// Vocabulary (BERT/GPT) or classes (ViT head).
    pub vocab: usize,
    /// Maximum sequence length / number of patches.
    pub max_seq: usize,
}

impl TransformerConfig {
    /// ViT of Fig 7's convergence run: 12 layers, hidden 384, 6 heads,
    /// ImageNet-1k classes, 196 patches (224/16 squared).
    pub fn vit_fig7() -> Self {
        TransformerConfig {
            layers: 12,
            hidden: 384,
            heads: 6,
            mlp_ratio: 4,
            vocab: 1000,
            max_seq: 196,
        }
    }

    /// ViT of Fig 11a (4 GPUs on Systems I/II): 64 layers, hidden 3072, 48
    /// heads.
    pub fn vit_fig11_4gpu() -> Self {
        TransformerConfig {
            layers: 64,
            hidden: 3072,
            heads: 48,
            mlp_ratio: 4,
            vocab: 1000,
            max_seq: 196,
        }
    }

    /// ViT of Fig 11b (8 GPUs): hidden 4096, 64 heads.
    pub fn vit_fig11_8gpu() -> Self {
        TransformerConfig {
            layers: 64,
            hidden: 4096,
            heads: 64,
            mlp_ratio: 4,
            vocab: 1000,
            max_seq: 196,
        }
    }

    /// ViT of Table 3 rows with 4-8 GPUs: 24 layers, hidden 2048, 32 heads.
    pub fn vit_table3_small() -> Self {
        TransformerConfig {
            layers: 24,
            hidden: 2048,
            heads: 32,
            mlp_ratio: 4,
            vocab: 1000,
            max_seq: 196,
        }
    }

    /// ViT of Table 3 rows with 16+ GPUs: 32 layers, hidden 4096, 64 heads.
    pub fn vit_table3_large() -> Self {
        TransformerConfig {
            layers: 32,
            hidden: 4096,
            heads: 64,
            mlp_ratio: 4,
            vocab: 1000,
            max_seq: 196,
        }
    }

    /// BERT-Base (Figs 12-13): 12 layers, hidden 768, 12 heads, seq 512.
    pub fn bert_base() -> Self {
        TransformerConfig {
            layers: 12,
            hidden: 768,
            heads: 12,
            mlp_ratio: 4,
            vocab: 30522,
            max_seq: 512,
        }
    }

    /// The 10-billion-parameter GPT-2 of Fig 14 (50 layers x hidden 4096
    /// gives 10.1B transformer parameters).
    pub fn gpt2_10b() -> Self {
        TransformerConfig {
            layers: 50,
            hidden: 4096,
            heads: 32,
            mlp_ratio: 4,
            vocab: 50257,
            max_seq: 1024,
        }
    }

    /// OPT-13B of the Fig 14 companion experiment (40 layers, hidden 5120).
    pub fn opt_13b() -> Self {
        TransformerConfig {
            layers: 40,
            hidden: 5120,
            heads: 40,
            mlp_ratio: 4,
            vocab: 50272,
            max_seq: 2048,
        }
    }

    /// Parameters of one Transformer layer: QKV + output projection
    /// (4 h^2 + 4h) plus the two MLP matrices (2 * r h^2 + (r+1) h) plus two
    /// LayerNorms (4h).
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let r = self.mlp_ratio as u64;
        4 * h * h + 4 * h + 2 * r * h * h + (r + 1) * h + 4 * h
    }

    /// Transformer-stack parameters (embeddings/heads excluded, matching the
    /// "model data" the paper's tensor parallelism shards).
    pub fn transformer_params(&self) -> u64 {
        self.layers as u64 * self.params_per_layer()
    }

    /// Total parameters including token/position embeddings and the
    /// untied output head.
    pub fn total_params(&self) -> u64 {
        let h = self.hidden as u64;
        self.transformer_params()
            + (self.vocab as u64) * h       // token embedding / patch proj
            + (self.max_seq as u64) * h     // position embedding
            + (self.vocab as u64) * h // output head
    }

    /// Forward FLOPs for one token at sequence length `seq`: the standard
    /// `2 * params + 4 * seq * h` per-layer attention quadratic term.
    pub fn forward_flops_per_token(&self, seq: usize) -> u64 {
        let h = self.hidden as u64;
        let per_layer = 2 * self.params_per_layer() + 4 * (seq as u64) * h;
        self.layers as u64 * per_layer
    }

    /// Training-step FLOPs for a `batch x seq` step (forward + backward,
    /// backward costed at 2x forward).
    pub fn train_flops(&self, batch: usize, seq: usize) -> u64 {
        3 * (batch * seq) as u64 * self.forward_flops_per_token(seq)
    }

    /// Activation bytes per layer for a `batch x seq` micro-batch at fp16,
    /// following Korthikanti et al.'s `s*b*h*(34 + 5*a*s/h)` estimate
    /// (attention score matrices included).
    pub fn activation_bytes_per_layer(&self, batch: usize, seq: usize) -> u64 {
        let s = seq as f64;
        let b = batch as f64;
        let h = self.hidden as f64;
        let a = self.heads as f64;
        (s * b * h * (34.0 + 5.0 * a * s / h)) as u64
    }

    /// Total activation bytes for the whole stack.
    pub fn activation_bytes(&self, batch: usize, seq: usize) -> u64 {
        self.layers as u64 * self.activation_bytes_per_layer(batch, seq)
    }

    /// FP16 model-data bytes (params + grads) plus FP32 optimizer state
    /// (master weights, Adam m and v): the 16-bytes-per-param rule of
    /// mixed-precision Adam training.
    pub fn model_data_bytes(&self) -> u64 {
        16 * self.total_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt2_10b_parameter_count_matches_label() {
        let p = TransformerConfig::gpt2_10b().transformer_params();
        assert!(
            (9.5e9..11.0e9).contains(&(p as f64)),
            "GPT-2 config should be ~10B params, got {p}"
        );
    }

    #[test]
    fn opt_13b_parameter_count_matches_label() {
        let p = TransformerConfig::opt_13b().transformer_params();
        assert!(
            (12.0e9..14.0e9).contains(&(p as f64)),
            "OPT config should be ~13B params, got {p}"
        );
    }

    #[test]
    fn bert_base_is_about_110m() {
        let p = TransformerConfig::bert_base().total_params();
        assert!(
            (100.0e6..135.0e6).contains(&(p as f64)),
            "BERT-Base should be ~110M params, got {p}"
        );
    }

    #[test]
    fn params_per_layer_is_about_12_h_squared() {
        let c = TransformerConfig::bert_base();
        let h = c.hidden as u64;
        let p = c.params_per_layer();
        assert!(
            p > 12 * h * h && p < 12 * h * h + 14 * h,
            "p = {p}, 12h^2 = {}",
            12 * h * h
        );
    }

    #[test]
    fn flops_scale_with_batch_and_layers() {
        let c = TransformerConfig::bert_base();
        assert_eq!(c.train_flops(2, 128), 2 * c.train_flops(1, 128));
        let mut bigger = c;
        bigger.layers *= 2;
        assert_eq!(
            bigger.forward_flops_per_token(128),
            2 * c.forward_flops_per_token(128)
        );
    }

    #[test]
    fn activation_memory_quadratic_in_seq() {
        let c = TransformerConfig::bert_base();
        let a1 = c.activation_bytes_per_layer(1, 512) as f64;
        let a2 = c.activation_bytes_per_layer(1, 1024) as f64;
        // more than linear growth because of the attention matrices
        assert!(a2 / a1 > 2.0);
        // and linear in batch
        let b2 = c.activation_bytes_per_layer(2, 512) as f64;
        assert!((b2 / a1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn model_data_is_16_bytes_per_param() {
        let c = TransformerConfig::vit_fig7();
        assert_eq!(c.model_data_bytes(), 16 * c.total_params());
    }
}
