//! The layer abstraction: explicit forward / backward with cached
//! activations.
//!
//! Instead of a dynamic tape, layers cache what their backward needs. This
//! "module" style mirrors how Megatron/Colossal-AI structure tensor-parallel
//! layers, makes activation checkpointing a trivial wrapper (drop the cache,
//! recompute on demand), and keeps every simulated device's state fully
//! thread-local.

use crate::param::Param;
use colossalai_tensor::Tensor;

/// A differentiable module.
///
/// Contract: `backward` must be called after `forward` with the upstream
/// gradient of the most recent forward's output, and consumes the cached
/// activations (one backward per forward, like PyTorch's default
/// `retain_graph=False`).
pub trait Layer {
    /// Computes the output and caches whatever backward will need.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Propagates the upstream gradient, accumulating into parameter grads
    /// and returning the gradient w.r.t. the input.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Like [`Layer::backward`], but fires `on_stage(stage_grads)` after each
    /// sub-layer stage finishes its backward, where `stage_grads` holds the
    /// stage's final parameter gradients (cheap copy-on-write clones, in
    /// [`Layer::visit_params`] order). At that point those gradients are
    /// final, so gradient-sync buckets can launch while the rest of the
    /// backward still runs. Stages fire in backward (reverse-forward) order:
    /// the fired slices always describe a growing *suffix* of the visit-order
    /// parameter list. The default treats the whole layer as one stage;
    /// containers like [`Sequential`] fire per sub-layer.
    fn backward_staged(&mut self, dy: &Tensor, on_stage: &mut dyn FnMut(&[Tensor])) -> Tensor {
        let dx = self.backward(dy);
        let mut grads = Vec::new();
        self.visit_params(&mut |p| grads.push(p.grad().clone()));
        on_stage(&grads);
        dx
    }

    /// Visits every parameter (for optimizers, counting, checkpointing).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Clears all gradient accumulators.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total scalar parameter count.
    fn n_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }
}

impl<L: Layer + ?Sized> Layer for Box<L> {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        (**self).forward(x)
    }
    fn backward(&mut self, dy: &Tensor) -> Tensor {
        (**self).backward(dy)
    }
    fn backward_staged(&mut self, dy: &Tensor, on_stage: &mut dyn FnMut(&[Tensor])) -> Tensor {
        (**self).backward_staged(dy, on_stage)
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        (**self).visit_params(f)
    }
}

/// A chain of layers applied in sequence.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur);
        }
        cur
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut cur = dy.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur);
        }
        cur
    }

    fn backward_staged(&mut self, dy: &Tensor, on_stage: &mut dyn FnMut(&[Tensor])) -> Tensor {
        let mut cur = dy.clone();
        for l in self.layers.iter_mut().rev() {
            // recurse so nested containers fire their own finer stages
            cur = l.backward_staged(&cur, on_stage);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

/// Finite-difference gradient check for any layer: compares the analytic
/// input gradient and parameter gradients against central differences of the
/// scalar objective `sum(forward(x) * dy)`.
///
/// Intended for tests; `eps` around `1e-3` and `tol` around `1e-2` work well
/// in f32.
pub fn grad_check(layer: &mut dyn Layer, x: &Tensor, eps: f32, tol: f32) -> Result<(), String> {
    use colossalai_tensor::init;
    let mut rng = init::rng(0x9e3779b9);
    let y = layer.forward(x);
    let dy = init::uniform(y.shape().clone(), -1.0, 1.0, &mut rng);
    layer.zero_grad();
    let dx = layer.backward(&dy);

    let objective = |layer: &mut dyn Layer, x: &Tensor| -> f32 {
        let y = layer.forward(x);
        // a forward used only for probing still caches activations; flush
        // them with a dummy backward so state stays consistent
        let _ = layer.backward(&dy);
        y.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum()
    };

    // input gradient
    for i in 0..x.numel() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        // parameter grads polluted by probe backwards are rebuilt below
        let fd = (objective(layer, &xp) - objective(layer, &xm)) / (2.0 * eps);
        let got = dx.data()[i];
        if (got - fd).abs() > tol * (1.0 + fd.abs()) {
            return Err(format!("dx[{i}]: analytic {got} vs fd {fd}"));
        }
    }

    // parameter gradients: snapshot analytic grads first
    let mut analytic: Vec<Tensor> = Vec::new();
    layer.visit_params(&mut |p| analytic.push(p.grad().clone()));
    // restore grads clobbered by probing? They were accumulated during
    // probes; instead re-run a clean backward to rebuild them:
    layer.zero_grad();
    let _ = layer.forward(x);
    let _ = layer.backward(&dy);
    analytic.clear();
    layer.visit_params(&mut |p| analytic.push(p.grad().clone()));

    for (pi, analytic_grad) in analytic.iter().enumerate() {
        let numel = analytic_grad.numel();
        for i in 0..numel.min(24) {
            // perturb parameter pi element i
            fn nudge(layer: &mut dyn Layer, pi: usize, i: usize, delta: f32) {
                let mut idx = 0;
                layer.visit_params(&mut |p| {
                    if idx == pi {
                        p.value_mut().data_mut()[i] += delta;
                    }
                    idx += 1;
                });
            }
            nudge(layer, pi, i, eps);
            let fp = objective(layer, x);
            nudge(layer, pi, i, -2.0 * eps);
            let fm = objective(layer, x);
            nudge(layer, pi, i, eps); // restore
            let fd = (fp - fm) / (2.0 * eps);
            let got = analytic_grad.data()[i];
            if (got - fd).abs() > tol * (1.0 + fd.abs()) {
                return Err(format!("param {pi} grad[{i}]: analytic {got} vs fd {fd}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use colossalai_tensor::init;

    #[test]
    fn sequential_chains_layers() {
        let mut rng = init::rng(1);
        let mut seq = Sequential::new(vec![
            Box::new(Linear::from_rng("l1", 4, 6, true, &mut rng)),
            Box::new(Linear::from_rng("l2", 6, 3, true, &mut rng)),
        ]);
        let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
        let y = seq.forward(&x);
        assert_eq!(y.dims(), &[2, 3]);
        let dx = seq.backward(&Tensor::ones([2, 3]));
        assert_eq!(dx.dims(), &[2, 4]);
        assert_eq!(seq.n_params(), 4 * 6 + 6 + 6 * 3 + 3);
    }

    #[test]
    fn backward_staged_fires_suffix_counts_in_reverse() {
        let mut rng = init::rng(3);
        let mut seq = Sequential::new(vec![
            Box::new(Linear::from_rng("l1", 4, 6, true, &mut rng)), // 2 params
            Box::new(crate::act::Gelu::new()),                      // 0 params
            Box::new(Linear::from_rng("l2", 6, 3, false, &mut rng)), // 1 param
        ]);
        let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
        let y1 = seq.forward(&x);

        let mut counts = Vec::new();
        let dx_staged =
            seq.backward_staged(&Tensor::ones([2, 3]), &mut |stage| counts.push(stage.len()));
        assert_eq!(counts, vec![1, 0, 2], "reverse-forward order");
        assert_eq!(counts.iter().sum::<usize>(), 3, "covers every param");

        // staged backward computes exactly what plain backward computes
        let y2 = seq.forward(&x);
        assert_eq!(y1.data(), y2.data());
        let dx_plain = seq.backward(&Tensor::ones([2, 3]));
        assert_eq!(dx_staged.data(), dx_plain.data());
    }

    #[test]
    fn default_backward_staged_is_one_stage() {
        let mut rng = init::rng(4);
        let mut lin = Linear::from_rng("l", 3, 2, true, &mut rng);
        let x = init::uniform([1, 3], -1.0, 1.0, &mut rng);
        let _ = lin.forward(&x);
        let mut counts = Vec::new();
        let _ = lin.backward_staged(&Tensor::ones([1, 2]), &mut |stage| counts.push(stage.len()));
        assert_eq!(counts, vec![2], "weight + bias as a single stage");
        let _ = lin.forward(&x);
        let mut stage_grads = Vec::new();
        let _ = lin.backward_staged(&Tensor::ones([1, 2]), &mut |stage| {
            stage_grads.extend(stage.iter().cloned());
        });
        let mut direct = Vec::new();
        lin.visit_params(&mut |p| direct.push(p.grad().clone()));
        assert_eq!(stage_grads.len(), direct.len());
        for (s, d) in stage_grads.iter().zip(&direct) {
            assert_eq!(s.data(), d.data(), "staged grads are the real grads");
        }
    }

    #[test]
    fn sequential_grad_check() {
        let mut rng = init::rng(2);
        let mut seq = Sequential::new(vec![
            Box::new(Linear::from_rng("l1", 3, 5, true, &mut rng)),
            Box::new(crate::act::Gelu::new()),
            Box::new(Linear::from_rng("l2", 5, 2, false, &mut rng)),
        ]);
        let x = init::uniform([4, 3], -1.0, 1.0, &mut rng);
        grad_check(&mut seq, &x, 1e-2, 5e-2).unwrap();
    }
}
