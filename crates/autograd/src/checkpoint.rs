//! Activation checkpointing (gradient checkpointing), the
//! compute-for-memory trade of Chen et al. that Colossal-AI integrates.
//!
//! The wrapped layer's forward result is returned but its activation caches
//! are immediately discarded; backward re-runs the forward from the saved
//! input to rebuild them. Peak activation memory of the wrapped segment
//! drops to (input + output) at the cost of one extra forward.

use crate::layer::Layer;
use crate::param::Param;
use colossalai_tensor::Tensor;

/// Wraps a layer (or a whole [`crate::layer::Sequential`] segment) with
/// activation checkpointing.
pub struct Checkpoint<L: Layer> {
    inner: L,
    saved_input: Option<Tensor>,
    /// Forward invocations of the inner layer (recomputation is observable
    /// for tests and for the FLOPs accounting of the engine).
    pub recompute_count: u64,
}

impl<L: Layer> Checkpoint<L> {
    pub fn new(inner: L) -> Self {
        Checkpoint {
            inner,
            saved_input: None,
            recompute_count: 0,
        }
    }

    /// The wrapped layer.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Mutable access to the wrapped layer.
    pub fn inner_mut(&mut self) -> &mut L {
        &mut self.inner
    }
}

impl<L: Layer> Layer for Checkpoint<L> {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.saved_input = Some(x.clone());
        let y = self.inner.forward(x);
        // Discard the inner caches by running a throwaway backward would
        // corrupt parameter grads; instead we simply let the caches sit and
        // overwrite them during recomputation. The *memory model* (what the
        // engine charges) treats the segment as cache-free; the functional
        // recomputation below keeps gradients exact either way.
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.saved_input.take().expect("backward before forward");
        // recompute forward to rebuild activation caches
        let _ = self.inner.forward(&x);
        self.recompute_count += 1;
        self.inner.backward(dy)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.inner.visit_params(f);
    }
}

/// Activation bytes held by a checkpointed segment between forward and
/// backward: just the saved input.
pub fn checkpointed_activation_bytes(input_elems: u64) -> u64 {
    input_elems * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Gelu;
    use crate::layer::Sequential;
    use crate::linear::Linear;
    use colossalai_tensor::init;

    fn small_mlp(rng: &mut init::InitRng) -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::from_rng("l1", 4, 8, true, rng)),
            Box::new(Gelu::new()),
            Box::new(Linear::from_rng("l2", 8, 4, true, rng)),
        ])
    }

    #[test]
    fn checkpointed_gradients_match_plain() {
        let mut rng = init::rng(40);
        let mut plain = small_mlp(&mut rng);
        let mut rng2 = init::rng(40);
        let mut ckpt = Checkpoint::new(small_mlp(&mut rng2));

        let x = init::uniform([3, 4], -1.0, 1.0, &mut rng);
        let dy = init::uniform([3, 4], -1.0, 1.0, &mut rng);

        let y1 = plain.forward(&x);
        let dx1 = plain.backward(&dy);
        let y2 = ckpt.forward(&x);
        let dx2 = ckpt.backward(&dy);

        assert!(y1.allclose(&y2, 0.0), "forward must be identical");
        assert!(dx1.allclose(&dx2, 0.0), "input grads must be identical");

        let mut g1 = Vec::new();
        plain.visit_params(&mut |p| g1.push(p.grad().clone()));
        let mut g2 = Vec::new();
        ckpt.visit_params(&mut |p| g2.push(p.grad().clone()));
        for (a, b) in g1.iter().zip(g2.iter()) {
            assert!(a.allclose(b, 0.0), "param grads must be identical");
        }
    }

    #[test]
    fn recomputation_happens_once_per_backward() {
        let mut rng = init::rng(41);
        let mut ckpt = Checkpoint::new(small_mlp(&mut rng));
        let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
        for step in 1..=3 {
            let _ = ckpt.forward(&x);
            let _ = ckpt.backward(&Tensor::ones([2, 4]));
            assert_eq!(ckpt.recompute_count, step);
        }
    }

    #[test]
    fn activation_bytes_formula() {
        assert_eq!(checkpointed_activation_bytes(1000), 4000);
    }
}
