//! Fast-mode properties of the fused optimizer sweeps: the FMA
//! instantiations must stay within a small per-element ULP budget of the
//! deterministic forms, and within fast mode the parallel lockstep-chunked
//! path must stay bitwise-identical to the serial sweep (chunking never
//! changes the per-element expression).
//!
//! `set_fast_mode` is process-global; every test serializes on one mutex
//! and restores the deterministic default before releasing it.

use std::sync::Mutex;

use colossalai_autograd::optim::{adamw_update, sgd_momentum_update};
use colossalai_tensor::{init, kernel_threads, set_fast_mode, set_kernel_threads};

static FAST_LOCK: Mutex<()> = Mutex::new(());

fn vecs(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut rng = init::rng(seed);
    let p = init::uniform([n], -1.0, 1.0, &mut rng).data().to_vec();
    let s = init::uniform([n], -0.5, 0.5, &mut rng).data().to_vec();
    let g = init::uniform([n], -0.1, 0.1, &mut rng).data().to_vec();
    (p, s, g)
}

fn ulp_at(x: f32) -> f32 {
    let mag = x.abs().max(1e-6);
    2.0f32.powi(mag.log2().floor() as i32 - 23)
}

#[test]
fn sgd_fast_within_budget_and_deterministic() {
    let _g = FAST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let n = 4097; // odd length exercises the scalar tail
    let (p0, v0, g) = vecs(n, 11);
    let steps = 5;
    let run = || {
        let (mut p, mut v) = (p0.clone(), v0.clone());
        for _ in 0..steps {
            sgd_momentum_update(&mut p, &mut v, &g, 0.01, 0.9);
        }
        (p, v)
    };
    set_fast_mode(false);
    let (dp, _) = run();
    set_fast_mode(true);
    let (fp, _) = run();
    // Each fused step replaces two roundings with one, so after `steps`
    // iterations the drift is a handful of ULPs at the *trajectory* scale
    // (the initial parameter magnitude — the final value may sit near zero).
    for ((d, f), p) in dp.iter().zip(&fp).zip(&p0) {
        let allowed = 8.0 * steps as f32 * ulp_at(d.abs().max(p.abs()).max(0.01));
        assert!((d - f).abs() <= allowed, "|{d} - {f}| > {allowed}");
    }
    // determinism within fast mode: thread budget never changes a bit
    let ambient = kernel_threads();
    set_kernel_threads(1);
    let (serial, _) = run();
    set_kernel_threads(4);
    let (threaded, _) = run();
    set_kernel_threads(ambient);
    set_fast_mode(false);
    assert_eq!(serial, threaded);
}

#[test]
fn adamw_fast_within_budget_and_deterministic() {
    let _g = FAST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let n = 4097;
    let (p0, g, _) = vecs(n, 23);
    let run = || {
        let mut p = p0.clone();
        let mut m = vec![0.0f32; n];
        let mut v = vec![0.0f32; n];
        for t in 1..=5u64 {
            adamw_update(&mut p, &g, &mut m, &mut v, t, 1e-3, 0.9, 0.999, 1e-8, 0.01);
        }
        p
    };
    set_fast_mode(false);
    let dp = run();
    set_fast_mode(true);
    let fp = run();
    for ((d, f), p) in dp.iter().zip(&fp).zip(&p0) {
        // five steps, each fusing four roundings into the moment blends,
        // the decay term and the final update
        let allowed = 64.0 * ulp_at(d.abs().max(p.abs()).max(1e-3));
        assert!((d - f).abs() <= allowed, "|{d} - {f}| > {allowed}");
    }
    let ambient = kernel_threads();
    set_kernel_threads(1);
    let serial = run();
    set_kernel_threads(4);
    let threaded = run();
    set_kernel_threads(ambient);
    set_fast_mode(false);
    assert_eq!(serial, threaded);
}
