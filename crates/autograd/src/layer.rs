//! The layer abstraction: explicit forward / backward with cached
//! activations.
//!
//! Instead of a dynamic tape, layers cache what their backward needs. This
//! "module" style mirrors how Megatron/Colossal-AI structure tensor-parallel
//! layers, makes activation checkpointing a trivial wrapper (drop the cache,
//! recompute on demand), and keeps every simulated device's state fully
//! thread-local.

use crate::param::Param;
use colossalai_tensor::Tensor;

/// A differentiable module.
///
/// Contract: `backward` must be called after `forward` with the upstream
/// gradient of the most recent forward's output, and consumes the cached
/// activations (one backward per forward, like PyTorch's default
/// `retain_graph=False`).
pub trait Layer {
    /// Computes the output and caches whatever backward will need.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Propagates the upstream gradient, accumulating into parameter grads
    /// and returning the gradient w.r.t. the input.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Visits every parameter (for optimizers, counting, checkpointing).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Clears all gradient accumulators.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total scalar parameter count.
    fn n_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }
}

impl<L: Layer + ?Sized> Layer for Box<L> {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        (**self).forward(x)
    }
    fn backward(&mut self, dy: &Tensor) -> Tensor {
        (**self).backward(dy)
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        (**self).visit_params(f)
    }
}

/// A chain of layers applied in sequence.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur);
        }
        cur
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut cur = dy.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

/// Finite-difference gradient check for any layer: compares the analytic
/// input gradient and parameter gradients against central differences of the
/// scalar objective `sum(forward(x) * dy)`.
///
/// Intended for tests; `eps` around `1e-3` and `tol` around `1e-2` work well
/// in f32.
pub fn grad_check(layer: &mut dyn Layer, x: &Tensor, eps: f32, tol: f32) -> Result<(), String> {
    use colossalai_tensor::init;
    let mut rng = init::rng(0x9e3779b9);
    let y = layer.forward(x);
    let dy = init::uniform(y.shape().clone(), -1.0, 1.0, &mut rng);
    layer.zero_grad();
    let dx = layer.backward(&dy);

    let objective = |layer: &mut dyn Layer, x: &Tensor| -> f32 {
        let y = layer.forward(x);
        // a forward used only for probing still caches activations; flush
        // them with a dummy backward so state stays consistent
        let _ = layer.backward(&dy);
        y.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum()
    };

    // input gradient
    for i in 0..x.numel() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        // parameter grads polluted by probe backwards are rebuilt below
        let fd = (objective(layer, &xp) - objective(layer, &xm)) / (2.0 * eps);
        let got = dx.data()[i];
        if (got - fd).abs() > tol * (1.0 + fd.abs()) {
            return Err(format!("dx[{i}]: analytic {got} vs fd {fd}"));
        }
    }

    // parameter gradients: snapshot analytic grads first
    let mut analytic: Vec<Tensor> = Vec::new();
    layer.visit_params(&mut |p| analytic.push(p.grad().clone()));
    // restore grads clobbered by probing? They were accumulated during
    // probes; instead re-run a clean backward to rebuild them:
    layer.zero_grad();
    let _ = layer.forward(x);
    let _ = layer.backward(&dy);
    analytic.clear();
    layer.visit_params(&mut |p| analytic.push(p.grad().clone()));

    for (pi, analytic_grad) in analytic.iter().enumerate() {
        let numel = analytic_grad.numel();
        for i in 0..numel.min(24) {
            // perturb parameter pi element i
            fn nudge(layer: &mut dyn Layer, pi: usize, i: usize, delta: f32) {
                let mut idx = 0;
                layer.visit_params(&mut |p| {
                    if idx == pi {
                        p.value_mut().data_mut()[i] += delta;
                    }
                    idx += 1;
                });
            }
            nudge(layer, pi, i, eps);
            let fp = objective(layer, x);
            nudge(layer, pi, i, -2.0 * eps);
            let fm = objective(layer, x);
            nudge(layer, pi, i, eps); // restore
            let fd = (fp - fm) / (2.0 * eps);
            let got = analytic_grad.data()[i];
            if (got - fd).abs() > tol * (1.0 + fd.abs()) {
                return Err(format!("param {pi} grad[{i}]: analytic {got} vs fd {fd}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use colossalai_tensor::init;

    #[test]
    fn sequential_chains_layers() {
        let mut rng = init::rng(1);
        let mut seq = Sequential::new(vec![
            Box::new(Linear::from_rng("l1", 4, 6, true, &mut rng)),
            Box::new(Linear::from_rng("l2", 6, 3, true, &mut rng)),
        ]);
        let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
        let y = seq.forward(&x);
        assert_eq!(y.dims(), &[2, 3]);
        let dx = seq.backward(&Tensor::ones([2, 3]));
        assert_eq!(dx.dims(), &[2, 4]);
        assert_eq!(seq.n_params(), 4 * 6 + 6 + 6 * 3 + 3);
    }

    #[test]
    fn sequential_grad_check() {
        let mut rng = init::rng(2);
        let mut seq = Sequential::new(vec![
            Box::new(Linear::from_rng("l1", 3, 5, true, &mut rng)),
            Box::new(crate::act::Gelu::new()),
            Box::new(Linear::from_rng("l2", 5, 2, false, &mut rng)),
        ]);
        let x = init::uniform([4, 3], -1.0, 1.0, &mut rng);
        grad_check(&mut seq, &x, 1e-2, 5e-2).unwrap();
    }
}
