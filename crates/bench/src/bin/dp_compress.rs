//! Lossy gradient compression for data parallelism: convergence + modeled
//! comm time (the fig-7-style harness for the `comm.compress` channels).
//!
//! Two legs:
//!
//! 1. **Convergence** — a small classifier trained with DP on 4 ranks under
//!    every channel (`none`, `fp16`, `int8`, `topk`). The per-step global
//!    loss of each lossy run must track the exact run within a documented
//!    tolerance — error feedback carries what a step drops into the next
//!    step, so the trajectories stay close even at high compression.
//! 2. **Comm time** — a wider model on the bandwidth-starved System II
//!    (bimodal single node) and System IV (one P100 per node over Aries),
//!    no modeled compute, so the virtual clock is pure gradient traffic.
//!    The quantized channels cut wire bytes 2-4x (fp16/int8) and top-k cuts
//!    them by orders of magnitude; modeled step time follows.
//!
//! `--json` emits one object with both legs for the CI gates: every lossy
//! channel's `max_gap` must stay under `tolerance`, and int8 must show at
//! least a 1.3x modeled comm-time reduction on Systems II and IV.

use colossalai_autograd::{AdamW, Gelu, Layer, Linear, Sequential};
use colossalai_bench::print_table;
use colossalai_comm::{Compression, World};
use colossalai_models::data::SyntheticVision;
use colossalai_parallel::data_parallel::{split_batch, DataParallel};
use colossalai_tensor::init;
use colossalai_tensor::ops::cross_entropy;
use colossalai_topology::systems::{system_ii, system_iv};
use colossalai_topology::Cluster;

/// Convergence leg: ranks and steps.
const P: usize = 4;
const STEPS: usize = 30;

/// Documented per-channel loss tolerance (max per-step gap from the exact
/// run; see EXPERIMENTS.md). The quantized channels are near-exact; top-k
/// drops 75% of each bucket per step, so error feedback delays — not
/// derails — convergence and earns a wider budget.
fn tolerance(mode: &str) -> f32 {
    match mode {
        "fp16" => 0.01,
        "int8" => 0.05,
        "topk" => 0.75,
        _ => 0.0,
    }
}

/// Comm leg: ranks, steps, hidden width (≈75k params, several buckets).
const COMM_P: usize = 8;
const COMM_STEPS: usize = 2;
const COMM_HIDDEN: usize = 1024;
const COMM_BUCKET: usize = 1 << 20;

/// The channels under test, in report order.
fn channels() -> [(&'static str, Compression); 4] {
    [
        ("none", Compression::None),
        ("fp16", Compression::Fp16),
        ("int8", Compression::Int8),
        ("topk", Compression::TopK(1024)),
    ]
}

fn make_classifier(seed: u64) -> Sequential {
    let mut rng = init::rng(seed);
    Sequential::new(vec![
        Box::new(Linear::from_rng("l1", 16, 32, true, &mut rng)),
        Box::new(Gelu::new()),
        Box::new(Linear::from_rng("l2", 32, 8, true, &mut rng)),
    ])
}

/// Trains the classifier with DP under one channel; returns the per-step
/// global loss (mean of the equal-shard local means).
fn convergence_losses(comp: Compression) -> Vec<f32> {
    // top-k at convergence scale: keep 16 of each 64-element bucket (25%)
    let comp = match comp {
        Compression::TopK(_) => Compression::TopK(16),
        c => c,
    };
    let data = SyntheticVision::new(4, 4, 8, 13);
    let world = World::new(system_ii());
    let per_rank = world.run_on(P, |ctx| {
        let g = ctx.world_group(P);
        let mut dp = DataParallel::with_bucket_bytes(ctx, &g, make_classifier(41), 256)
            .with_compression(comp);
        let mut opt = AdamW::new(0.01, 0.01);
        let mut losses = Vec::with_capacity(STEPS);
        for step in 0..STEPS {
            let (x, t) = data.batch(4 * P, step as u64);
            let x = x.reshape([4 * P, 16]);
            dp.zero_grad();
            let x_local = split_batch(&x, P, g.rank());
            let t_local: Vec<usize> = t.chunks(4).nth(g.rank()).unwrap().to_vec();
            let logits = dp.forward(&x_local);
            let (loss, d) = cross_entropy(&logits, &t_local);
            losses.push(loss);
            let _ = dp.backward(&d);
            opt.step_layer(&mut dp);
        }
        losses
    });
    (0..STEPS)
        .map(|s| per_rank.iter().map(|l| l[s]).sum::<f32>() / P as f32)
        .collect()
}

/// Comm leg: pure-communication virtual step time (ms) of DP gradient sync
/// under one channel on one system. No modeled compute, so the rank clock
/// is exactly the charged collective time.
fn comm_step_ms(cluster: Cluster, comp: Compression) -> f64 {
    let make_wide = |seed: u64| {
        let mut rng = init::rng(seed);
        Sequential::new(vec![
            Box::new(Linear::from_rng("in", 32, COMM_HIDDEN, true, &mut rng)) as Box<dyn Layer>,
            Box::new(Linear::from_rng(
                "h0",
                COMM_HIDDEN,
                COMM_HIDDEN,
                true,
                &mut rng,
            )),
            Box::new(Linear::from_rng("out", COMM_HIDDEN, 8, true, &mut rng)),
        ])
    };
    let world = World::new(cluster);
    let mut rng = init::rng(7);
    let xs: Vec<_> = (0..COMM_STEPS)
        .map(|_| init::uniform([COMM_P * 2, 32], -1.0, 1.0, &mut rng))
        .collect();
    let clocks = world.run_on(COMM_P, |ctx| {
        let g = ctx.world_group(COMM_P);
        let mut dp = DataParallel::with_bucket_bytes(ctx, &g, make_wide(11), COMM_BUCKET)
            .with_compression(comp);
        let mut opt = AdamW::new(0.01, 0.01);
        for x in &xs {
            dp.zero_grad();
            let x_local = split_batch(x, COMM_P, g.rank());
            let t: Vec<usize> = (0..x_local.dims()[0]).map(|i| i % 8).collect();
            let logits = dp.forward(&x_local);
            let (_, d) = cross_entropy(&logits, &t);
            let _ = dp.backward(&d);
            opt.step_layer(&mut dp);
        }
        ctx.clock()
    });
    let makespan = clocks.into_iter().fold(0.0f64, f64::max);
    makespan * 1e3 / COMM_STEPS as f64
}

fn main() {
    // --- convergence leg ---
    let curves: Vec<(&str, Vec<f32>)> = channels()
        .into_iter()
        .map(|(name, comp)| (name, convergence_losses(comp)))
        .collect();
    let exact = curves[0].1.clone();
    let gaps: Vec<(&str, f32)> = curves
        .iter()
        .map(|(name, losses)| {
            let gap = exact
                .iter()
                .zip(losses)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            (*name, gap)
        })
        .collect();

    // --- comm leg ---
    let systems = [("System II", system_ii()), ("System IV", system_iv())];
    let comm: Vec<(&str, Vec<(&str, f64)>)> = systems
        .into_iter()
        .map(|(sname, cluster)| {
            let times: Vec<(&str, f64)> = channels()
                .into_iter()
                .map(|(cname, comp)| (cname, comm_step_ms(cluster.clone(), comp)))
                .collect();
            (sname, times)
        })
        .collect();

    if std::env::args().any(|a| a == "--json") {
        let modes_json: Vec<String> = curves
            .iter()
            .zip(&gaps)
            .map(|((name, losses), (_, gap))| {
                format!(
                    "{{\"mode\":\"{name}\",\"final_loss\":{:.6},\"max_gap\":{gap:.6},\
                     \"tolerance\":{}}}",
                    losses[STEPS - 1],
                    tolerance(name)
                )
            })
            .collect();
        let comm_json: Vec<String> = comm
            .iter()
            .map(|(sname, times)| {
                let t_none = times[0].1;
                let per_mode: Vec<String> = times
                    .iter()
                    .map(|(cname, ms)| {
                        format!(
                            "{{\"mode\":\"{cname}\",\"step_ms\":{ms:.6},\"speedup\":{:.3}}}",
                            t_none / ms
                        )
                    })
                    .collect();
                format!(
                    "{{\"system\":\"{sname}\",\"p\":{COMM_P},\"modes\":[{}]}}",
                    per_mode.join(",")
                )
            })
            .collect();
        println!(
            "{{\"convergence\":{{\"p\":{P},\"steps\":{STEPS},\
             \"modes\":[{}]}},\"comm\":[{}]}}",
            modes_json.join(","),
            comm_json.join(",")
        );
        return;
    }

    let rows: Vec<Vec<String>> = (0..STEPS)
        .step_by(5)
        .chain([STEPS - 1])
        .map(|s| {
            let mut row = vec![s.to_string()];
            row.extend(curves.iter().map(|(_, l)| format!("{:.4}", l[s])));
            row
        })
        .collect();
    print_table(
        &format!("DP loss under gradient compression ({P} ranks, error feedback)"),
        &["step", "none", "fp16", "int8", "topk"],
        &rows,
    );
    for (name, gap) in &gaps[1..] {
        println!(
            "{name}: max loss gap from exact = {gap:.4} (tolerance {})",
            tolerance(name)
        );
    }

    let rows: Vec<Vec<String>> = comm
        .iter()
        .map(|(sname, times)| {
            let t_none = times[0].1;
            let mut row = vec![sname.to_string()];
            row.extend(
                times
                    .iter()
                    .map(|(_, ms)| format!("{ms:.3} ({:.2}x)", t_none / ms)),
            );
            row
        })
        .collect();
    print_table(
        &format!("modeled DP comm time, {COMM_P} ranks, ms/step (speedup vs none)"),
        &["system", "none", "fp16", "int8", "topk"],
        &rows,
    );
    println!(
        "\nError feedback re-injects each step's compression error into the \
         next step's gradient, so the lossy trajectories track the exact \
         one; the quantized channels cut modeled comm time by their wire \
         ratio on bandwidth-starved systems (DESIGN.md §14)."
    );
}
