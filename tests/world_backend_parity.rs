//! Backend-parity contract of the rank execution backends: the scheduler
//! backend — at ANY pool size — the stackless task executor — at ANY pool
//! size — and the legacy thread-per-rank backend produce bitwise-identical
//! losses, byte-identical traffic stats and identical trace span sequences
//! for the same workload. Scheduling decides only *when* ranks execute,
//! never *what* they compute; and driving a rank as a resumable
//! [`colossalai_comm::RankTask`] instead of a blocking closure decides only
//! *how it waits*, never what it computes.

use colossalai_comm::workload::{run_hybrid, HybridSpec};
use colossalai_comm::{CommStats, HybridTask, Span, World, WorldBackend};
use colossalai_topology::systems::system_iii;

const SPEC: HybridSpec = HybridSpec {
    dp: 2,
    tp: 4,
    pp: 2,
    elems: 512,
    steps: 3,
};

/// Runs the canonical 16-rank hybrid DP x TP x PP workload under `backend`
/// and returns (per-rank per-step losses, stats, trace).
fn run_under(backend: WorldBackend) -> (Vec<Vec<f32>>, CommStats, Vec<Span>) {
    let world = World::new(system_iii());
    world.set_backend(Some(backend));
    world.enable_tracing();
    let losses = world.run_on(SPEC.ranks(), |ctx| run_hybrid(ctx, &SPEC));
    (losses, world.stats(), world.trace())
}

#[test]
fn scheduler_pools_match_threads_backend_bitwise() {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let (ref_losses, ref_stats, ref_trace) = run_under(WorldBackend::Threads);
    assert!(
        ref_losses.iter().flatten().all(|l| l.is_finite()),
        "workload must produce real losses"
    );
    assert!(ref_stats.ops > 0 && !ref_trace.is_empty());
    for pool in [1, 2, cores] {
        let (losses, stats, trace) = run_under(WorldBackend::Sched { pool });
        assert_eq!(
            losses, ref_losses,
            "losses diverged from threads backend at pool={pool}"
        );
        assert_eq!(
            stats, ref_stats,
            "traffic stats diverged from threads backend at pool={pool}"
        );
        assert_eq!(
            trace, ref_trace,
            "trace spans diverged from threads backend at pool={pool}"
        );
    }
}

/// Runs the same workload as [`run_under`] but through the task path:
/// one [`HybridTask`] state machine per rank via `World::run_tasks`.
fn run_tasks_under(backend: WorldBackend) -> (Vec<Vec<f32>>, CommStats, Vec<Span>) {
    let world = World::new(system_iii());
    world.set_backend(Some(backend));
    world.enable_tracing();
    let losses = world.run_tasks(SPEC.ranks(), |_rank| HybridTask::new(SPEC));
    (losses, world.stats(), world.trace())
}

/// The tentpole parity claim: the stackless executor — ranks as resumable
/// heap tasks multiplexed on a fixed worker pool, zero parked rank threads
/// — reproduces the thread-per-rank backend bit for bit at every pool
/// size.
#[test]
fn stackless_pools_match_threads_backend_bitwise() {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let (ref_losses, ref_stats, ref_trace) = run_under(WorldBackend::Threads);
    for pool in [1, 2, cores] {
        let (losses, stats, trace) = run_tasks_under(WorldBackend::Stackless { pool });
        assert_eq!(
            losses, ref_losses,
            "losses diverged from threads backend at stackless pool={pool}"
        );
        assert_eq!(
            stats, ref_stats,
            "traffic stats diverged from threads backend at stackless pool={pool}"
        );
        assert_eq!(
            trace, ref_trace,
            "trace spans diverged from threads backend at stackless pool={pool}"
        );
    }
}

/// `run_tasks` and `run_on` are two drivers of the same protocol: a
/// [`HybridTask`] polled to completion by `block_on` on a rank thread
/// (threads/scheduler backends) must equal the blocking `run_hybrid`
/// closure bitwise.
#[test]
fn run_tasks_matches_run_on_under_thread_backends() {
    let (ref_losses, ref_stats, ref_trace) = run_under(WorldBackend::Threads);
    for backend in [WorldBackend::Threads, WorldBackend::Sched { pool: 2 }] {
        let (losses, stats, trace) = run_tasks_under(backend);
        assert_eq!(losses, ref_losses, "losses diverged under {backend:?}");
        assert_eq!(stats, ref_stats, "stats diverged under {backend:?}");
        assert_eq!(trace, ref_trace, "trace diverged under {backend:?}");
    }
}

#[test]
fn scheduler_handles_worlds_larger_than_its_pool() {
    // 64 ranks multiplexed onto 4 running slots: the scheduler must keep
    // making progress through rendezvous and p2p waits
    let spec = HybridSpec {
        dp: 4,
        tp: 4,
        pp: 4,
        elems: 64,
        steps: 2,
    };
    let world = World::new(colossalai_topology::systems::fat_tree_512());
    world.set_backend(Some(WorldBackend::Sched { pool: 4 }));
    let losses = world.run_on(spec.ranks(), |ctx| run_hybrid(ctx, &spec));
    assert_eq!(losses.len(), 64);
    assert!(losses.iter().flatten().all(|l| l.is_finite()));
}

#[test]
fn stackless_runs_worlds_far_larger_than_its_pool_on_one_thread() {
    // 256 ranks as heap tasks on a single worker slot: the executor must
    // make progress through every rendezvous and p2p wait without ever
    // spawning a second thread
    let spec = HybridSpec {
        dp: 4,
        tp: 8,
        pp: 8,
        elems: 64,
        steps: 2,
    };
    let world = World::new(colossalai_topology::systems::fat_tree_512());
    world.set_backend(Some(WorldBackend::Stackless { pool: 1 }));
    let losses = world.run_tasks(spec.ranks(), move |_rank| HybridTask::new(spec));
    assert_eq!(losses.len(), 256);
    assert!(losses.iter().flatten().all(|l| l.is_finite()));
    assert_eq!(
        world.thread_stats().peak_live,
        1,
        "a 1-slot pool must never have more than one live rank thread"
    );
}

/// When several stackless tasks panic, the run re-raises the lowest
/// panicking rank — deterministic regardless of worker interleaving,
/// matching the thread backends.
#[test]
fn stackless_reraises_lowest_rank_panic() {
    use colossalai_comm::{DeviceCtx, Poll, RankTask, RecvOp};

    struct Boom {
        op: Option<RecvOp>,
    }
    impl RankTask for Boom {
        type Output = ();
        fn poll(&mut self, ctx: &DeviceCtx) -> Poll<()> {
            match ctx.rank() {
                2 => panic!("rank two exploded"),
                5 => panic!("rank five exploded"),
                _ => {
                    // parks forever on a message that never comes; only
                    // the abort wake can release it
                    let op = self.op.get_or_insert_with(|| ctx.start_recv(2, 99));
                    match op.poll(ctx) {
                        Poll::Ready(_) => unreachable!("no message is sent under tag 99"),
                        Poll::Pending(key) => Poll::Pending(key),
                    }
                }
            }
        }
    }

    for pool in [1, 2] {
        let world = World::new(system_iii());
        world.set_backend(Some(WorldBackend::Stackless { pool }));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            world.run_tasks(8, |_rank| Boom { op: None });
        }))
        .expect_err("a task panic must abort the run");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("device thread panicked"), "{msg}");
        assert!(
            msg.contains("rank 2") && msg.contains("rank two exploded"),
            "lowest panicking rank must win at pool={pool}: {msg}"
        );
    }
}

#[test]
fn scheduler_propagates_rank_panics_with_rank_and_message() {
    let world = World::new(system_iii());
    world.set_backend(Some(WorldBackend::Sched { pool: 2 }));
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        world.run_on(8, |ctx| {
            if ctx.rank() == 3 {
                panic!("rank three exploded");
            }
            // peers park in a barrier that can never complete; the abort
            // must wake and unwind them instead of hanging the run
            let g = ctx.world_group(8);
            g.barrier(ctx);
        });
    }))
    .expect_err("a rank panic must abort the run");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&'static str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("device thread panicked"), "{msg}");
    assert!(msg.contains("rank 3"), "{msg}");
    assert!(msg.contains("rank three exploded"), "{msg}");
}
