//! Heterogeneous-training placement policies (Section 3.2 / Fig 14).
//!
//! Models where ZeRO-3 model data lives during mixed-precision training:
//!
//! * **StaticCpu** — DeepSpeed's zero-offload policy: all model data (fp16
//!   parameters, fp16 gradients, fp32 master weights and Adam moments) is
//!   kept in CPU memory regardless of GPU headroom, and the optimizer runs
//!   entirely on the CPU.
//! * **Adaptive** — Colossal-AI's policy: model data stays GPU-resident as
//!   long as there is headroom after the working set (activations + compute
//!   scratch); only the overflow is offloaded, and parameters are updated on
//!   both CPU and GPU ("hybrid Adam").
//!
//! The planner returns per-step transfer volumes; combined with the PCIe
//! link model this yields the throughput gap of Fig 14.

use colossalai_comm::{DeviceCtx, SpanKind};
use colossalai_topology::{HostSpec, Link};

/// FLOPs an Adam update spends per parameter (two moments + update math).
pub const ADAM_FLOPS_PER_PARAM: u64 = 16;

/// Offload placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// DeepSpeed zero-offload: everything on the CPU, always.
    StaticCpu,
    /// Colossal-AI: fill available GPU memory first.
    Adaptive,
}

/// Byte layout of ZeRO-3 model data on one device for `n_params` total
/// parameters sharded over `dp_degree` data-parallel ranks.
#[derive(Clone, Copy, Debug)]
pub struct ModelData {
    pub n_params: u64,
    pub dp_degree: u64,
}

impl ModelData {
    /// FP16 parameter shard (gradient storage is the same allocation thanks
    /// to Fig 6 reuse).
    pub fn fp16_shard_bytes(&self) -> u64 {
        2 * self.n_params / self.dp_degree
    }

    /// FP32 master weights + Adam m + Adam v shard.
    pub fn optimizer_shard_bytes(&self) -> u64 {
        12 * self.n_params / self.dp_degree
    }

    /// Parameters owned (updated) by one rank.
    pub fn params_per_rank(&self) -> u64 {
        self.n_params / self.dp_degree
    }
}

/// The planner's decision for one training step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OffloadPlan {
    /// Fraction of the fp16 parameter shard resident on the GPU.
    pub param_gpu_fraction: f64,
    /// Fraction of the optimizer-state shard resident on the GPU.
    pub opt_gpu_fraction: f64,
    /// Model-data bytes resident on the GPU.
    pub gpu_model_bytes: u64,
    /// Model-data bytes resident in CPU DRAM.
    pub cpu_model_bytes: u64,
    /// Host-to-device bytes transferred per training step.
    pub h2d_per_step: u64,
    /// Device-to-host bytes transferred per training step.
    pub d2h_per_step: u64,
    /// Parameters updated by the CPU Adam per step.
    pub cpu_adam_params: u64,
    /// Parameters updated by the GPU Adam per step.
    pub gpu_adam_params: u64,
}

/// Plans placement for one device.
///
/// `gpu_capacity` is the device memory; `working_bytes` is the activation +
/// scratch footprint of one step at the chosen batch size, which model data
/// must not displace.
pub fn plan(
    policy: PlacementPolicy,
    model: ModelData,
    gpu_capacity: u64,
    working_bytes: u64,
) -> OffloadPlan {
    let fp16 = model.fp16_shard_bytes();
    let opt = model.optimizer_shard_bytes();
    let headroom = match policy {
        PlacementPolicy::StaticCpu => 0,
        PlacementPolicy::Adaptive => gpu_capacity.saturating_sub(working_bytes),
    };
    // Priority 1: fp16 params (touched twice per step by fwd+bwd).
    let param_resident = headroom.min(fp16);
    let f = if fp16 == 0 {
        1.0
    } else {
        param_resident as f64 / fp16 as f64
    };
    // Priority 2: optimizer states with what remains.
    let opt_resident = (headroom - param_resident).min(opt);
    let g = if opt == 0 {
        1.0
    } else {
        opt_resident as f64 / opt as f64
    };

    // Non-resident params are streamed in for forward and again for
    // backward; resident-but-CPU-updated params must be refreshed from the
    // CPU master copy after the step.
    let fetch = (2.0 * (1.0 - f) * fp16 as f64) as u64;
    let refresh = ((f - g).max(0.0) * fp16 as f64) as u64;
    // Gradients owned by the CPU optimizer portion leave the device.
    let grads_out = ((1.0 - g) * fp16 as f64) as u64;

    let params = model.params_per_rank();
    let cpu_params = ((1.0 - g) * params as f64) as u64;
    OffloadPlan {
        param_gpu_fraction: f,
        opt_gpu_fraction: g,
        gpu_model_bytes: param_resident + opt_resident,
        cpu_model_bytes: (fp16 - param_resident) + (opt - opt_resident),
        h2d_per_step: fetch + refresh,
        d2h_per_step: grads_out,
        cpu_adam_params: cpu_params,
        gpu_adam_params: params - cpu_params,
    }
}

impl OffloadPlan {
    /// Per-step overhead seconds attributable to offloading: PCIe traffic
    /// plus the CPU share of the Adam update. (GPU Adam time is charged by
    /// the training engine as ordinary device compute.)
    pub fn overhead_seconds(&self, pcie: Link, host: &HostSpec) -> f64 {
        let mut t = 0.0;
        if self.h2d_per_step > 0 {
            t += pcie.transfer_time(self.h2d_per_step);
        }
        if self.d2h_per_step > 0 {
            t += pcie.transfer_time(self.d2h_per_step);
        }
        if self.cpu_adam_params > 0 {
            t += (self.cpu_adam_params * ADAM_FLOPS_PER_PARAM) as f64 / host.cpu_flops;
        }
        t
    }

    /// Charges one step's offload overhead to `ctx`'s virtual clock,
    /// recording a memory-movement span per PCIe leg and a compute span for
    /// the CPU share of the Adam update (when tracing is on). Returns the
    /// seconds charged, equal to [`OffloadPlan::overhead_seconds`].
    pub fn charge_step(&self, ctx: &DeviceCtx, pcie: Link, host: &HostSpec) -> f64 {
        let mut total = 0.0;
        let mut leg = |bytes: u64, from: &'static str, to: &'static str, dt: f64| {
            let start = ctx.clock();
            ctx.advance(dt);
            if ctx.tracing() {
                ctx.trace_span(SpanKind::MemMove { bytes, from, to }, start);
            }
            total += dt;
        };
        if self.h2d_per_step > 0 {
            leg(
                self.h2d_per_step,
                "cpu",
                "gpu",
                pcie.transfer_time(self.h2d_per_step),
            );
        }
        if self.d2h_per_step > 0 {
            leg(
                self.d2h_per_step,
                "gpu",
                "cpu",
                pcie.transfer_time(self.d2h_per_step),
            );
        }
        if self.cpu_adam_params > 0 {
            let dt = (self.cpu_adam_params * ADAM_FLOPS_PER_PARAM) as f64 / host.cpu_flops;
            let start = ctx.clock();
            ctx.advance(dt);
            if ctx.tracing() {
                ctx.trace_span(
                    SpanKind::Compute {
                        label: "cpu_adam".to_string(),
                    },
                    start,
                );
            }
            total += dt;
        }
        total
    }
}

/// Three-tier residency split (GPU / CPU DRAM / NVMe) for ZeRO-offload
/// model data, Section 2.4's "CPU or NVMe disks" path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TieredPlan {
    /// The two-tier plan for the GPU boundary.
    pub gpu_plan: OffloadPlan,
    /// Model-data bytes resident in CPU DRAM.
    pub dram_bytes: u64,
    /// Model-data bytes spilled to NVMe (only when DRAM is exhausted).
    pub nvme_bytes: u64,
    /// Extra per-step seconds for the NVMe round trips of the spilled
    /// optimizer data.
    pub nvme_seconds_per_step: f64,
}

/// Plans placement across all three tiers: fill GPU headroom first (per
/// `policy`), then CPU DRAM, then spill the remainder to NVMe. Returns
/// `None` when the model does not fit even with NVMe (or NVMe is absent
/// and DRAM overflows).
pub fn plan_tiered(
    policy: PlacementPolicy,
    model: ModelData,
    gpu_capacity: u64,
    working_bytes: u64,
    host: &HostSpec,
    nvme: Link,
) -> Option<TieredPlan> {
    let gpu_plan = plan(policy, model, gpu_capacity, working_bytes);
    let off_gpu = gpu_plan.cpu_model_bytes;
    let dram_bytes = off_gpu.min(host.dram_bytes);
    let nvme_bytes = off_gpu - dram_bytes;
    if nvme_bytes > 0 && (host.nvme_bytes == 0 || nvme_bytes > host.nvme_bytes) {
        return None;
    }
    // every step, the NVMe-resident optimizer slice must be read for the
    // update and written back
    let nvme_seconds_per_step = if nvme_bytes > 0 {
        2.0 * nvme.transfer_time(nvme_bytes)
    } else {
        0.0
    };
    Some(TieredPlan {
        gpu_plan,
        dram_bytes,
        nvme_bytes,
        nvme_seconds_per_step,
    })
}

impl TieredPlan {
    /// Total per-step overhead across PCIe, CPU Adam and NVMe.
    pub fn overhead_seconds(&self, pcie: Link, host: &HostSpec) -> f64 {
        self.gpu_plan.overhead_seconds(pcie, host) + self.nvme_seconds_per_step
    }

    /// Charges one step's three-tier overhead to `ctx`'s virtual clock with
    /// trace spans, mirroring [`OffloadPlan::charge_step`] plus the NVMe
    /// round trip of the spilled optimizer slice.
    pub fn charge_step(&self, ctx: &DeviceCtx, pcie: Link, host: &HostSpec) -> f64 {
        let mut total = self.gpu_plan.charge_step(ctx, pcie, host);
        if self.nvme_seconds_per_step > 0.0 {
            let start = ctx.clock();
            ctx.advance(self.nvme_seconds_per_step);
            if ctx.tracing() {
                // read for the update + write back: one span for the pair
                ctx.trace_span(
                    SpanKind::MemMove {
                        bytes: 2 * self.nvme_bytes,
                        from: "nvme",
                        to: "cpu",
                    },
                    start,
                );
            }
            total += self.nvme_seconds_per_step;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    fn gpt2_10b_on(dp: u64) -> ModelData {
        ModelData {
            n_params: 10_000_000_000,
            dp_degree: dp,
        }
    }

    #[test]
    fn shard_sizes_scale_with_dp() {
        let m1 = gpt2_10b_on(1);
        let m8 = gpt2_10b_on(8);
        assert_eq!(m1.fp16_shard_bytes(), 20_000_000_000);
        assert_eq!(m8.fp16_shard_bytes(), 2_500_000_000);
        assert_eq!(m1.optimizer_shard_bytes(), 120_000_000_000);
    }

    #[test]
    fn static_policy_keeps_nothing_on_gpu() {
        let p = plan(
            PlacementPolicy::StaticCpu,
            gpt2_10b_on(8),
            80 * GIB,
            10 * GIB,
        );
        assert_eq!(p.gpu_model_bytes, 0);
        assert_eq!(p.param_gpu_fraction, 0.0);
        // every param streamed twice, every grad offloaded
        assert_eq!(p.h2d_per_step, 2 * gpt2_10b_on(8).fp16_shard_bytes());
        assert_eq!(p.d2h_per_step, gpt2_10b_on(8).fp16_shard_bytes());
        assert_eq!(p.cpu_adam_params, gpt2_10b_on(8).params_per_rank());
        assert_eq!(p.gpu_adam_params, 0);
    }

    #[test]
    fn adaptive_with_ample_headroom_keeps_params_resident() {
        // 8-way DP of 10B params: fp16 shard 2.5 GB, opt shard 15 GB;
        // 80 GB GPU with a small batch leaves plenty of room for both.
        let p = plan(
            PlacementPolicy::Adaptive,
            gpt2_10b_on(8),
            80 * GIB,
            10 * GIB,
        );
        assert_eq!(p.param_gpu_fraction, 1.0);
        assert_eq!(p.opt_gpu_fraction, 1.0);
        assert_eq!(p.h2d_per_step, 0);
        assert_eq!(p.d2h_per_step, 0);
        assert_eq!(p.cpu_adam_params, 0);
    }

    #[test]
    fn adaptive_with_tight_memory_offloads_partially() {
        // single GPU, 10B params: fp16 20 GB fits in an 80 GB GPU minus a
        // 10 GB working set, but the 120 GB optimizer shard only partially.
        let p = plan(
            PlacementPolicy::Adaptive,
            gpt2_10b_on(1),
            80 * GIB,
            10 * GIB,
        );
        assert_eq!(p.param_gpu_fraction, 1.0);
        assert!(
            p.opt_gpu_fraction > 0.3 && p.opt_gpu_fraction < 0.7,
            "g = {}",
            p.opt_gpu_fraction
        );
        assert!(
            p.cpu_adam_params > 0 && p.gpu_adam_params > 0,
            "hybrid update"
        );
        assert!(p.h2d_per_step > 0, "cpu-updated params need refresh");
    }

    #[test]
    fn adaptive_strictly_cheaper_than_static() {
        for dp in [1u64, 2, 4, 8] {
            let model = gpt2_10b_on(dp);
            let s = plan(PlacementPolicy::StaticCpu, model, 80 * GIB, 10 * GIB);
            let a = plan(PlacementPolicy::Adaptive, model, 80 * GIB, 10 * GIB);
            let host = HostSpec::dgx();
            let ts = s.overhead_seconds(Link::pcie(), &host);
            let ta = a.overhead_seconds(Link::pcie(), &host);
            assert!(ta < ts, "dp={dp}: adaptive {ta} !< static {ts}");
        }
    }

    #[test]
    fn adaptive_converges_to_static_when_no_headroom() {
        let model = gpt2_10b_on(8);
        let s = plan(PlacementPolicy::StaticCpu, model, 80 * GIB, 10 * GIB);
        let a = plan(PlacementPolicy::Adaptive, model, 80 * GIB, 80 * GIB);
        assert_eq!(a.h2d_per_step, s.h2d_per_step);
        assert_eq!(a.d2h_per_step, s.d2h_per_step);
        assert_eq!(a.cpu_adam_params, s.cpu_adam_params);
    }

    #[test]
    fn tiered_plan_spills_to_nvme_only_when_dram_full() {
        // a 100B-parameter model: 1.6 TB of model data on one device
        let model = ModelData {
            n_params: 100_000_000_000,
            dp_degree: 1,
        };
        let big_host = HostSpec::dgx(); // 1 TiB DRAM + NVMe
        let plan = plan_tiered(
            PlacementPolicy::Adaptive,
            model,
            80 * GIB,
            10 * GIB,
            &big_host,
            Link::nvme(),
        )
        .expect("fits with NVMe");
        assert!(plan.nvme_bytes > 0, "1.6TB exceeds 1TiB DRAM");
        assert_eq!(
            plan.gpu_plan.cpu_model_bytes,
            plan.dram_bytes + plan.nvme_bytes
        );
        assert!(plan.nvme_seconds_per_step > 0.0);

        // 10B params fit in DRAM: no NVMe traffic
        let small = ModelData {
            n_params: 10_000_000_000,
            dp_degree: 1,
        };
        let plan = plan_tiered(
            PlacementPolicy::Adaptive,
            small,
            80 * GIB,
            10 * GIB,
            &big_host,
            Link::nvme(),
        )
        .unwrap();
        assert_eq!(plan.nvme_bytes, 0);
        assert_eq!(plan.nvme_seconds_per_step, 0.0);
    }

    #[test]
    fn tiered_plan_fails_without_nvme() {
        let model = ModelData {
            n_params: 100_000_000_000,
            dp_degree: 1,
        };
        let no_nvme = HostSpec::workstation(); // 256 GiB DRAM, no NVMe
        assert!(plan_tiered(
            PlacementPolicy::StaticCpu,
            model,
            80 * GIB,
            10 * GIB,
            &no_nvme,
            Link::nvme(),
        )
        .is_none());
    }

    #[test]
    fn nvme_overhead_dominated_by_low_bandwidth() {
        let model = ModelData {
            n_params: 100_000_000_000,
            dp_degree: 1,
        };
        let host = HostSpec::dgx();
        let plan = plan_tiered(
            PlacementPolicy::StaticCpu,
            model,
            80 * GIB,
            10 * GIB,
            &host,
            Link::nvme(),
        )
        .unwrap();
        let total = plan.overhead_seconds(Link::pcie(), &host);
        assert!(
            plan.nvme_seconds_per_step > 0.5 * total,
            "NVMe round trips should dominate: {} of {}",
            plan.nvme_seconds_per_step,
            total
        );
    }

    #[test]
    fn charge_step_advances_clock_by_overhead() {
        use colossalai_comm::{SpanKind, World};
        use colossalai_topology::systems::system_i;
        let model = gpt2_10b_on(1);
        let host = HostSpec::dgx();
        let p = plan(PlacementPolicy::Adaptive, model, 80 * GIB, 10 * GIB);
        let want = p.overhead_seconds(Link::pcie(), &host);
        assert!(want > 0.0);
        let world = World::new(system_i());
        world.enable_tracing();
        let clocks = world.run_on(1, |ctx| {
            let charged = p.charge_step(ctx, Link::pcie(), &host);
            (charged, ctx.clock())
        });
        let (charged, clock) = clocks[0];
        assert!((charged - want).abs() < 1e-12);
        assert!((clock - want).abs() < 1e-12);
        let spans = world.trace();
        assert!(
            spans
                .iter()
                .any(|s| matches!(s.kind, SpanKind::MemMove { .. })),
            "PCIe legs must trace as memory movement"
        );
        assert!(
            spans
                .iter()
                .any(|s| matches!(&s.kind, SpanKind::Compute { label } if label == "cpu_adam")),
            "the CPU Adam share must trace as compute"
        );
    }

    #[test]
    fn residency_bytes_are_conserved() {
        let model = gpt2_10b_on(2);
        for (cap, work) in [
            (80 * GIB, 10 * GIB),
            (40 * GIB, 30 * GIB),
            (16 * GIB, 15 * GIB),
        ] {
            let p = plan(PlacementPolicy::Adaptive, model, cap, work);
            assert_eq!(
                p.gpu_model_bytes + p.cpu_model_bytes,
                model.fp16_shard_bytes() + model.optimizer_shard_bytes()
            );
            assert!(p.gpu_model_bytes <= cap.saturating_sub(work));
        }
    }
}
