//! # colossalai-tensor
//!
//! Dense n-dimensional `f32` tensors and the numeric kernels every other
//! crate in the Colossal-AI reproduction builds on: blocked matmul, batched
//! matmul, softmax/layernorm/GELU with analytic backward passes, seeded
//! initializers, and a software IEEE binary16 type for mixed-precision
//! storage emulation.
//!
//! Design choices:
//! * tensors are always owned, contiguous and row-major — simulated devices
//!   exchange buffers by value, so aliasing views would be a hazard, not an
//!   optimization;
//! * shape errors panic (like `ndarray`), since they are programming errors
//!   in a training system, not recoverable conditions;
//! * all randomness is seeded ChaCha8 so parallel-vs-serial equivalence tests
//!   can construct identical global parameters.

pub mod f16;
pub mod init;
pub mod matmul;
pub mod ops;
pub mod shape;
pub mod tensor;

pub use f16::F16;
pub use matmul::{bmm, bmm_at, bmm_bt, gemm, matmul, matmul_at, matmul_bt, matmul_nd};
pub use shape::Shape;
pub use tensor::Tensor;
