//! Deterministic vs fast-mode GEMM on the transformer shapes quoted in
//! `results/gemm_kernels.txt`: the same packed register-blocked core, once
//! with the default mul-then-add microkernel, once with the FMA microkernel
//! (`COLOSSAL_FAST` / `set_fast_mode`), and once through the bf16
//! storage-and-compute GEMM (operands rounded to bf16 at pack time, f32
//! accumulate — the AMP-path compute kernel).
//!
//! Timing is a median over interleaved passes (same de-noising rationale as
//! `world_scale`): every pass times every (shape, kernel) cell once, so
//! machine-speed drift hits all rows alike instead of biasing the ratios.
//!
//! `--json` emits one object for the CI gate:
//! `{"fma": bool, "shapes": [{"shape": "512x512x512", "det_gflops": ..,
//!   "fast_gflops": .., "bf16_gflops": .., "fast_speedup": ..,
//!   "bf16_speedup": ..}, ..]}` — the gate asserts `fast_speedup >= 1.0`
//! on the two largest shapes, but only when `fma` is true (without the
//! hardware FMA unit the fast microkernel's `mul_add` falls back to the
//! correctly-rounded libm routine, which is *slower* by design — same bits,
//! no claim of speed).

use colossalai_bench::print_table;
use colossalai_tensor::kernel::{gemm_mat, gemm_mat_bf16, Mat};
use colossalai_tensor::matmul::matmul_flops;
use colossalai_tensor::{fma_available, set_fast_mode};
use std::time::Instant;

const SHAPES: &[(usize, usize, usize)] = &[(512, 512, 512), (128, 768, 3072), (128, 768, 768)];
/// Interleaved timing passes per cell; the median is reported.
const REPS: usize = 7;

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Row {
    shape: String,
    det_gflops: f64,
    fast_gflops: f64,
    bf16_gflops: f64,
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let fma = fma_available();

    // cells[shape][kernel] = timing samples; kernels are det=0, fast=1, bf16=2
    let mut cells: Vec<[Vec<f64>; 3]> = SHAPES.iter().map(|_| Default::default()).collect();
    let inputs: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = SHAPES
        .iter()
        .map(|&(m, k, n)| (rand_vec(m * k, 3), rand_vec(k * n, 5), vec![0.0f32; m * n]))
        .collect();
    let mut inputs = inputs;

    // warm-up pass (untimed): page in the panels and resolve dispatch
    for pass in 0..=REPS {
        for (i, &(m, k, n)) in SHAPES.iter().enumerate() {
            let (a, b, out) = &mut inputs[i];
            #[allow(clippy::needless_range_loop)] // `kernel` also selects the dispatch arm
            for kernel in 0..3 {
                set_fast_mode(kernel == 1);
                out.iter_mut().for_each(|x| *x = 0.0);
                let t = Instant::now();
                if kernel == 2 {
                    gemm_mat_bf16(Mat::row_major(a, k), Mat::row_major(b, n), out, m, k, n);
                } else {
                    gemm_mat(Mat::row_major(a, k), Mat::row_major(b, n), out, m, k, n);
                }
                let dt = t.elapsed().as_secs_f64();
                std::hint::black_box(&mut *out);
                if pass > 0 {
                    cells[i][kernel].push(dt);
                }
            }
        }
    }
    set_fast_mode(false);

    let rows: Vec<Row> = SHAPES
        .iter()
        .zip(&mut cells)
        .map(|(&(m, k, n), c)| {
            let gflop = matmul_flops(m, k, n) as f64 / 1e9;
            Row {
                shape: format!("{m}x{k}x{n}"),
                det_gflops: gflop / median(&mut c[0]),
                fast_gflops: gflop / median(&mut c[1]),
                bf16_gflops: gflop / median(&mut c[2]),
            }
        })
        .collect();

    if json {
        let shapes: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"shape\": \"{}\", \"det_gflops\": {:.2}, \
                     \"fast_gflops\": {:.2}, \"bf16_gflops\": {:.2}, \
                     \"fast_speedup\": {:.3}, \"bf16_speedup\": {:.3}}}",
                    r.shape,
                    r.det_gflops,
                    r.fast_gflops,
                    r.bf16_gflops,
                    r.fast_gflops / r.det_gflops,
                    r.bf16_gflops / r.det_gflops
                )
            })
            .collect();
        println!("{{\"fma\": {fma}, \"shapes\": [{}]}}", shapes.join(", "));
        return;
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.shape.clone(),
                format!("{:.2}", r.det_gflops),
                format!("{:.2}", r.fast_gflops),
                format!("{:.2}", r.bf16_gflops),
                format!("{:.2}x", r.fast_gflops / r.det_gflops),
                format!("{:.2}x", r.bf16_gflops / r.det_gflops),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fast numeric mode GEMM (serial core, median of {REPS} interleaved \
             passes, hardware FMA {})",
            if fma { "available" } else { "NOT available" }
        ),
        &[
            "m x k x n",
            "det GFLOP/s",
            "fast GFLOP/s",
            "bf16 GFLOP/s",
            "fast speedup",
            "bf16 speedup",
        ],
        &table,
    );
    println!(
        "\ndet = mul-then-add microkernel (bitwise-reproducible default); \
         fast = FMA microkernel (COLOSSAL_FAST=1), same packing and \
         blocking; bf16 = operands rounded to bf16 at pack time with f32 \
         accumulation (the AMP-path compute GEMM). ULP budgets for both \
         fast kernels are derived in DESIGN.md §13 and enforced by \
         crates/tensor/tests/fast_props.rs."
    );
}
