//! Presets for the four experimental systems of Table 2.

use crate::cluster::Cluster;
use crate::device::{GpuSpec, HostSpec};
use crate::link::Link;

/// System I: one node, 8x A100-80GB, full-mesh NVLink between any pair
/// (Fig 9a).
pub fn system_i() -> Cluster {
    let mut c = Cluster::homogeneous(
        "System I",
        1,
        8,
        GpuSpec::a100(80),
        HostSpec::dgx(),
        Link::infiniband_hdr(),
    );
    c.full_mesh_intra_node(Link::nvlink());
    c
}

/// System II: one node, 8x A100-80GB, NVLink only between the four adjacent
/// pairs (0-1, 2-3, 4-5, 6-7); all other pairs communicate over PCIe
/// (Fig 9b).
pub fn system_ii() -> Cluster {
    let mut c = Cluster::homogeneous(
        "System II",
        1,
        8,
        GpuSpec::a100(80),
        HostSpec::dgx(),
        Link::infiniband_hdr(),
    );
    for pair in 0..4 {
        c.add_link(2 * pair, 2 * pair + 1, Link::nvlink());
    }
    c
}

/// System III: 16 nodes x 4 A100-40GB, NVLink inside a node, InfiniBand HDR
/// (200 Gb/s) between nodes.
pub fn system_iii() -> Cluster {
    let mut c = Cluster::homogeneous(
        "System III",
        16,
        4,
        GpuSpec::a100(40),
        HostSpec::workstation(),
        Link::infiniband_hdr(),
    );
    c.full_mesh_intra_node(Link::nvlink());
    c
}

/// System IV: 64 nodes x 1 P100-16GB connected by the Cray Aries fabric.
pub fn system_iv() -> Cluster {
    Cluster::homogeneous(
        "System IV",
        64,
        1,
        GpuSpec::p100(),
        HostSpec::workstation(),
        Link::aries(),
    )
}

/// A synthetic three-tier fat-tree cluster: `pods * nodes_per_pod` nodes of
/// 8x A100-80GB each, NVLink inside a node (as a fallback — no O(n²) link
/// table is materialized), InfiniBand HDR between nodes of a pod, and a
/// 2:1-oversubscribed, higher-latency uplink between pods. The shape of the
/// large production clusters the paper's scaling discussion targets.
pub fn fat_tree(name: impl Into<String>, pods: usize, nodes_per_pod: usize) -> Cluster {
    let mut c = Cluster::homogeneous(
        name,
        pods * nodes_per_pod,
        8,
        GpuSpec::a100(80),
        HostSpec::dgx(),
        Link::infiniband_hdr(),
    );
    c.set_intra_node_fallback(Link::nvlink());
    let ib = Link::infiniband_hdr();
    c.set_pods(
        nodes_per_pod,
        Link {
            kind: ib.kind,
            bandwidth: ib.bandwidth / 2.0, // 2:1 oversubscription at the spine
            latency: ib.latency * 3.0,     // two extra switch hops
        },
    );
    c
}

/// 512-GPU fat tree: 4 pods x 16 nodes x 8 GPUs.
pub fn fat_tree_512() -> Cluster {
    fat_tree("FatTree-512", 4, 16)
}

/// 1024-GPU fat tree: 8 pods x 16 nodes x 8 GPUs.
pub fn fat_tree_1024() -> Cluster {
    fat_tree("FatTree-1024", 8, 16)
}

/// 4096-GPU fat tree: 16 pods x 32 nodes x 8 GPUs.
pub fn fat_tree_4096() -> Cluster {
    fat_tree("FatTree-4096", 16, 32)
}

/// 8192-GPU fat tree: 32 pods x 32 nodes x 8 GPUs.
pub fn fat_tree_8192() -> Cluster {
    fat_tree("FatTree-8192", 32, 32)
}

/// 16384-GPU fat tree: 64 pods x 32 nodes x 8 GPUs.
pub fn fat_tree_16384() -> Cluster {
    fat_tree("FatTree-16384", 64, 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;

    #[test]
    fn table2_shapes() {
        assert_eq!(system_i().n_devices(), 8);
        assert_eq!(system_i().n_nodes(), 1);
        assert_eq!(system_ii().n_devices(), 8);
        assert_eq!(system_iii().n_devices(), 64);
        assert_eq!(system_iii().n_nodes(), 16);
        assert_eq!(system_iv().n_devices(), 64);
        assert_eq!(system_iv().n_nodes(), 64);
    }

    #[test]
    fn system_i_fully_connected() {
        let c = system_i();
        let all: Vec<usize> = (0..8).collect();
        assert!(c.fully_nvlinked(&all));
    }

    #[test]
    fn system_ii_adjacent_only() {
        let c = system_ii();
        assert_eq!(c.link(0, 1).kind, LinkKind::NvLink);
        assert_eq!(c.link(6, 7).kind, LinkKind::NvLink);
        assert_eq!(c.link(0, 2).kind, LinkKind::Pcie);
        assert_eq!(c.link(1, 7).kind, LinkKind::Pcie);
        assert!(!c.fully_nvlinked(&(0..8).collect::<Vec<_>>()));
        assert!(c.fully_nvlinked(&[4, 5]));
    }

    #[test]
    fn system_iii_cross_node_is_ib() {
        let c = system_iii();
        assert_eq!(c.link(0, 4).kind, LinkKind::InfiniBandHdr);
        assert_eq!(c.link(0, 3).kind, LinkKind::NvLink);
    }

    #[test]
    fn system_iv_all_cross_node() {
        let c = system_iv();
        assert_eq!(c.link(0, 1).kind, LinkKind::Aries);
        assert_eq!(c.gpu(0).name, "P100-16GB");
    }

    #[test]
    fn fat_tree_shapes_and_tiers() {
        let c = fat_tree_512();
        assert_eq!(c.n_devices(), 512);
        assert_eq!(c.n_nodes(), 64);
        assert_eq!(c.n_pods(), 4);
        // same node: NVLink fallback (no quadratic explicit table)
        assert_eq!(c.link(0, 7).kind, LinkKind::NvLink);
        // same pod, different node: full-rate IB
        let ib = Link::infiniband_hdr();
        assert_eq!(c.link(0, 8).kind, LinkKind::InfiniBandHdr);
        assert_eq!(c.link(0, 8).bandwidth, ib.bandwidth);
        // cross-pod: half bandwidth, triple latency
        let uplink = c.link(0, 511);
        assert_eq!(uplink.bandwidth, ib.bandwidth / 2.0);
        assert_eq!(uplink.latency, ib.latency * 3.0);
        assert_eq!(fat_tree_1024().n_devices(), 1024);
        assert_eq!(fat_tree_4096().n_devices(), 4096);
        assert_eq!(fat_tree_4096().n_pods(), 16);
        assert_eq!(fat_tree_8192().n_devices(), 8192);
        assert_eq!(fat_tree_16384().n_devices(), 16384);
        assert_eq!(fat_tree_16384().n_pods(), 64);
    }

    #[test]
    fn memory_capacities_match_table2() {
        assert_eq!(system_i().gpu(0).memory_bytes, 80 << 30);
        assert_eq!(system_iii().gpu(0).memory_bytes, 40 << 30);
        assert_eq!(system_iv().gpu(0).memory_bytes, 16 << 30);
    }
}
