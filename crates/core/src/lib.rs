//! # colossalai-core
//!
//! The unified user-facing system of the Colossal-AI paper (Fig 1): a
//! declarative [`config::Config`] schema, the [`context::ParallelContext`]
//! that carves devices into data/pipeline/tensor axes, the
//! [`engine::initialize`] entry point producing a training [`engine::Engine`]
//! (Listing 1's workflow), a [`trainer::Trainer`] with life-cycle hooks,
//! automatic mixed precision with dynamic loss scaling ([`amp`]), and the
//! adaptive CPU+GPU [`hybrid_adam::HybridAdam`] of Section 3.2.

pub mod amp;
pub mod config;
pub mod context;
pub mod engine;
pub mod hybrid_adam;
pub mod trainer;
pub mod zoo;

pub use amp::GradScaler;
pub use config::{CommConfig, ComputeConfig, Config, MemConfig};
pub use context::{ParallelAxis, ParallelContext};
pub use engine::{clip_grad_norm, clip_grad_norm_distributed, initialize, Engine, OptimizerSpec};
pub use hybrid_adam::HybridAdam;
pub use trainer::{Hook, LossRecorder, Trainer};
pub use zoo::{build_bert, build_gpt, build_vit};
