//! Criterion bench: wall-clock cost of the thread-backed collectives (the
//! substrate every parallel mode rides on).

use colossalai_comm::World;
use colossalai_tensor::Tensor;
use colossalai_topology::systems::system_i;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(10);
    for &elems in &[1usize << 10, 1 << 14] {
        for &p in &[2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("all_reduce/{elems}el"), p),
                &p,
                |b, &p| {
                    let world = World::new(system_i());
                    b.iter(|| {
                        world.run_on(p, |ctx| {
                            let g = ctx.world_group(p);
                            let t = Tensor::full([elems], ctx.rank() as f32);
                            std::hint::black_box(g.all_reduce(ctx, t));
                        });
                    });
                },
            );
        }
    }
    for &p in &[4usize, 8] {
        group.bench_with_input(BenchmarkId::new("reduce_scatter/4096el", p), &p, |b, &p| {
            let world = World::new(system_i());
            b.iter(|| {
                world.run_on(p, |ctx| {
                    let g = ctx.world_group(p);
                    let t = Tensor::full([4096], 1.0);
                    std::hint::black_box(g.reduce_scatter(ctx, t, 0));
                });
            });
        });
        group.bench_with_input(BenchmarkId::new("all_gather/4096el", p), &p, |b, &p| {
            let world = World::new(system_i());
            b.iter(|| {
                world.run_on(p, |ctx| {
                    let g = ctx.world_group(p);
                    let t = Tensor::full([4096 / p], 1.0);
                    std::hint::black_box(g.all_gather_cat(ctx, t, 0));
                });
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
