//! Process groups and their collective operations.
//!
//! Data movement is real (tensors cross threads through a rendezvous slot);
//! time is virtual (charged from the cluster's alpha-beta model for the
//! canonical ring algorithm of each collective). Reductions are applied in
//! rank order, so results are bit-deterministic across runs.

use crate::stats::OpKind;
use crate::task::{Poll, WakeKey};
use crate::trace::{group_track_name, SpanKind, Track};
use crate::world::DeviceCtx;
use colossalai_tensor::Tensor;
use colossalai_topology::{cost, AllReduceAlgo, Cluster, DeviceId};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Wire width of a collective payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wire {
    /// 4 bytes/element (FP32).
    F32,
    /// 2 bytes/element (FP16 payloads of mixed-precision/ZeRO traffic).
    F16,
    /// 1 byte/element (int8-quantized gradient traffic; the per-bucket
    /// scale is amortized into the element byte, like NCCL's int8 path).
    I8,
    /// 8 bytes/element — one (u32 index, f32 value) pair of a top-k
    /// sparsified payload.
    IdxVal,
}

impl Wire {
    /// Bytes per element at this wire width.
    pub fn bytes(self) -> u64 {
        match self {
            Wire::F32 => 4,
            Wire::F16 => 2,
            Wire::I8 => 1,
            Wire::IdxVal => 8,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Collect,
    Distribute,
}

/// Which virtual-time stream a collective charges.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Stream {
    /// The device's main clock: the caller observes the full op latency.
    Main,
    /// The device's comm stream: the call returns with the main clock
    /// untouched; [`DeviceCtx::comm_sync`] later joins the streams.
    Comm,
}

/// What the last arrival's `finish` computation hands back to the
/// rendezvous: per-rank outputs plus the op's modeled cost and accounting.
struct Done {
    outputs: Vec<Tensor>,
    cost: f64,
    kind: OpKind,
    /// Element hops the modeled schedule moves (drives stats + bytes).
    elements: u64,
    wire: Wire,
    /// Labeled phase durations of multi-phase schedules (hierarchical,
    /// tree, halving-doubling), in execution order; empty for single-phase
    /// schedules. Phases always sum to `cost`.
    phases: Vec<(OpKind, f64)>,
}

impl Done {
    fn new(outputs: Vec<Tensor>, cost: f64, kind: OpKind, elements: u64, wire: Wire) -> Done {
        Done {
            outputs,
            cost,
            kind,
            elements,
            wire,
            phases: Vec::new(),
        }
    }
}

/// Cost, element hops and (for multi-phase schedules) labeled phase
/// durations of a sum/max all-reduce of `n` elements under `algo`.
/// Inapplicable schedules (hierarchical on single-node or ragged groups,
/// halving-doubling on non-power-of-two groups) silently degrade to the
/// flat ring, exactly like their `cost::*_time` estimators. The tree and
/// halving-doubling schedules move the same `2 (p-1) n` element hops as the
/// flat ring (every schedule sends each rank's contribution to every other
/// rank exactly once in each direction); only the hierarchical one differs,
/// keeping bulk hops off the bottleneck link.
fn allreduce_plan(
    algo: AllReduceAlgo,
    cluster: &Cluster,
    members: &[DeviceId],
    n: u64,
    wire: Wire,
) -> (f64, u64, Vec<(OpKind, f64)>) {
    let p = members.len() as u64;
    let bytes = n * wire.bytes();
    let flat_elements = 2 * p.saturating_sub(1) * n;
    if p > 1 && n > 0 {
        match algo {
            AllReduceAlgo::Hierarchical => {
                if let Some((t1, t2, t3)) =
                    cost::hierarchical_allreduce_phases(cluster, members, bytes)
                {
                    let elements = cost::hierarchical_allreduce_elements(cluster, members, n)
                        .expect("phase breakdown implies applicability");
                    let phases = vec![
                        (OpKind::ReduceScatter, t1),
                        (OpKind::AllReduce, t2),
                        (OpKind::AllGather, t3),
                    ];
                    return (t1 + t2 + t3, elements, phases);
                }
            }
            AllReduceAlgo::Tree => {
                let (t1, t2) = cost::tree_allreduce_phases(cluster, members, bytes);
                let phases = vec![(OpKind::Reduce, t1), (OpKind::Broadcast, t2)];
                return (t1 + t2, flat_elements, phases);
            }
            AllReduceAlgo::RecursiveHalvingDoubling => {
                if let Some((t1, t2)) = cost::rhd_allreduce_phases(cluster, members, bytes) {
                    let phases = vec![(OpKind::ReduceScatter, t1), (OpKind::AllGather, t2)];
                    return (t1 + t2, flat_elements, phases);
                }
            }
            AllReduceAlgo::FlatRing => {}
        }
    }
    let cost = cost::allreduce_time(cluster, members, bytes);
    (cost, flat_elements, Vec::new())
}

/// What to compute when the last arrival combines the deposited inputs.
///
/// A plain value instead of a `FnOnce` closure so a [`CollectiveOp`] is a
/// small `'static` struct a stackless [`crate::task::RankTask`] can hold
/// across polls; the combine itself ([`finish_spec`]) runs in the last
/// arrival's poll, where a `DeviceCtx` (cluster, forced algo) is at hand.
#[derive(Clone, Copy)]
enum CollSpec {
    /// Sum (or elementwise-max) all-reduce.
    AllReduce {
        max: bool,
        wire: Wire,
    },
    /// Sum all-reduce of top-k-sparsified contributions: each rank's tensor
    /// holds at most `k` nonzeros; the wire carries only those as (index,
    /// value) pairs, all-gathered and summed locally (supports need not
    /// overlap, so a reduce tree cannot stay k-sparse — the standard sparse
    /// all-reduce schedule). The output is the dense rank-ordered sum.
    SparseAllReduce {
        k: usize,
    },
    AllGather {
        dim: usize,
        wire: Wire,
    },
    ReduceScatter {
        dim: usize,
        wire: Wire,
    },
    Broadcast {
        root: usize,
        wire: Wire,
    },
    Scatter {
        dim: usize,
        root: usize,
        wire: Wire,
    },
    Gather {
        dim: usize,
        root: usize,
        wire: Wire,
    },
    AllToAll {
        dim: usize,
        wire: Wire,
    },
    ReduceSum {
        root: usize,
        wire: Wire,
    },
    Barrier,
}

/// Runs `spec`'s combine over the rank-ordered inputs: per-rank outputs,
/// modeled cost and traffic accounting. Pure in the inputs plus the
/// cluster model (and the world's forced-algo pin), so every backend gets
/// bitwise-identical outputs no matter which rank arrives last.
fn finish_spec(spec: CollSpec, ctx: &DeviceCtx, members: &[DeviceId], inputs: &[Tensor]) -> Done {
    let p = members.len();
    let cluster = ctx.cluster();
    match spec {
        CollSpec::AllReduce { max, wire } => {
            let acc = if max {
                reduce_max_rank_ordered(inputs)
            } else {
                reduce_sum_rank_ordered(inputs)
            };
            let n = acc.numel() as u64;
            // max is associative+commutative, so the hierarchical schedule
            // applies to it exactly as to sum
            let algo = ctx
                .forced_allreduce_algo()
                .unwrap_or_else(|| cost::select_allreduce_algo(cluster, members, n * wire.bytes()));
            let (cost, elements, phases) = allreduce_plan(algo, cluster, members, n, wire);
            Done {
                outputs: vec![acc; p],
                cost,
                kind: OpKind::AllReduce,
                elements,
                wire,
                phases,
            }
        }
        CollSpec::SparseAllReduce { k } => {
            let acc = reduce_sum_rank_ordered(inputs);
            let wire = Wire::IdxVal;
            // a rank never sends more pairs than it has elements
            let k = (k as u64).min(acc.numel() as u64);
            // ring all-gather of every rank's k pairs; each rank sums the
            // incoming pairs into its dense buffer at zero modeled cost
            let cost = cost::allgather_time(cluster, members, k * wire.bytes());
            let elements = (p as u64 - 1) * p as u64 * k;
            Done::new(vec![acc; p], cost, OpKind::AllReduce, elements, wire)
        }
        CollSpec::AllGather { dim, wire } => {
            let contrib = inputs[0].numel() as u64;
            let full = Tensor::cat(inputs, dim);
            let cost = cost::allgather_time(cluster, members, contrib * wire.bytes());
            let elements = (p as u64 - 1) * p as u64 * contrib;
            Done::new(vec![full; p], cost, OpKind::AllGather, elements, wire)
        }
        CollSpec::ReduceScatter { dim, wire } => {
            let sum = reduce_sum_rank_ordered(inputs);
            let n = sum.numel() as u64;
            let outs = sum.chunk(dim, p);
            let cost = cost::reduce_scatter_time(cluster, members, n * wire.bytes());
            let elements = (p as u64 - 1) * n;
            Done::new(outs, cost, OpKind::ReduceScatter, elements, wire)
        }
        CollSpec::Broadcast { root, wire } => {
            let src = inputs[root].clone();
            let n = src.numel() as u64;
            let cost = cost::broadcast_time(cluster, members, n * wire.bytes());
            let elements = (p as u64 - 1) * n;
            Done::new(vec![src; p], cost, OpKind::Broadcast, elements, wire)
        }
        CollSpec::Scatter { dim, root, wire } => {
            let src = &inputs[root];
            let n = src.numel() as u64;
            let outs = src.chunk_ragged(dim, p);
            // uneven chunks: the largest one gates the pairwise exchange
            let max_chunk = outs.iter().map(|c| c.numel() as u64).max().unwrap_or(0);
            let kept = outs[root].numel() as u64;
            let cost = cost::alltoall_time(cluster, members, max_chunk * wire.bytes());
            // the root wires out everything except its own chunk
            let elements = n - kept;
            Done::new(outs, cost, OpKind::Scatter, elements, wire)
        }
        CollSpec::Gather { dim, root, wire } => {
            // contributions may be ragged: bill what each rank actually sends
            let max_contrib = inputs
                .iter()
                .enumerate()
                .filter(|&(r, _)| r != root)
                .map(|(_, t)| t.numel() as u64)
                .max()
                .unwrap_or(0);
            let elements: u64 = inputs
                .iter()
                .enumerate()
                .filter(|&(r, _)| r != root)
                .map(|(_, t)| t.numel() as u64)
                .sum();
            let full = Tensor::cat(inputs, dim);
            let outs = (0..p)
                .map(|r| {
                    if r == root {
                        full.clone()
                    } else {
                        Tensor::zeros([0])
                    }
                })
                .collect();
            let cost = cost::alltoall_time(cluster, members, max_contrib * wire.bytes());
            Done::new(outs, cost, OpKind::Gather, elements, wire)
        }
        CollSpec::AllToAll { dim, wire } => {
            let n = inputs[0].numel() as u64;
            let per_rank: Vec<Vec<Tensor>> =
                inputs.iter().map(|t| t.chunk_ragged(dim, p)).collect();
            // chunk sizes need not divide evenly; the largest chunk gates
            // each pairwise exchange step
            let max_chunk = per_rank[0]
                .iter()
                .map(|c| c.numel() as u64)
                .max()
                .unwrap_or(0);
            let outs = (0..p)
                .map(|i| {
                    let mine: Vec<Tensor> =
                        per_rank.iter().map(|chunks| chunks[i].clone()).collect();
                    Tensor::cat(&mine, dim)
                })
                .collect();
            let cost = cost::alltoall_time(cluster, members, max_chunk * wire.bytes());
            // each rank wires out its tensor minus the chunk it keeps; the
            // kept chunks across ranks sum to exactly one tensor
            let elements = (p as u64 - 1) * n;
            Done::new(outs, cost, OpKind::AllToAll, elements, wire)
        }
        CollSpec::ReduceSum { root, wire } => {
            let sum = reduce_sum_rank_ordered(inputs);
            let n = sum.numel() as u64;
            let outs = (0..p)
                .map(|r| {
                    if r == root {
                        sum.clone()
                    } else {
                        Tensor::zeros([0])
                    }
                })
                .collect();
            let cost = cost::broadcast_time(cluster, members, n * wire.bytes());
            let elements = (p as u64 - 1) * n;
            Done::new(outs, cost, OpKind::Reduce, elements, wire)
        }
        CollSpec::Barrier => {
            let cost = cost::allreduce_time(cluster, members, Wire::F32.bytes());
            Done::new(
                vec![Tensor::zeros([0]); p],
                cost,
                OpKind::Barrier,
                0,
                Wire::F32,
            )
        }
    }
}

/// Where a [`CollectiveOp`] is in the rendezvous protocol.
enum CollStage {
    /// Not yet deposited (possibly waiting out the previous op's drain).
    Enter,
    /// Deposited; waiting for the last arrival to publish the outputs.
    AwaitPublish,
}

/// One in-flight collective on this rank: the resumable form of a
/// rendezvous entry, created by the `Group::start_*` methods and advanced
/// by [`Group::poll_collective`] until it yields the rank's output.
///
/// Holding one of these across polls is what lets a stackless
/// [`crate::task::RankTask`] park *inside* a collective without owning a
/// stack; the blocking collectives drive the very same struct in a
/// poll/wait loop.
pub struct CollectiveOp {
    spec: CollSpec,
    stream: Stream,
    input: Option<Tensor>,
    /// This rank's arrival clock, latched on the first poll.
    t_arrive: Option<f64>,
    stage: CollStage,
    /// Set when the previous poll returned `Pending`: the next poll counts
    /// one observed group wakeup (the stackless analog of coming off a
    /// rendezvous condvar).
    parked: bool,
}

impl CollectiveOp {
    fn new(spec: CollSpec, stream: Stream, input: Tensor) -> CollectiveOp {
        CollectiveOp {
            spec,
            stream,
            input: Some(input),
            t_arrive: None,
            stage: CollStage::Enter,
            parked: false,
        }
    }
}

struct SlotState {
    phase: Phase,
    inputs: Vec<Option<Tensor>>,
    outputs: Vec<Option<Tensor>>,
    arrived: usize,
    picked: usize,
    t_max: f64,
    t_done: f64,
    /// Kind and wire bytes of the op in flight, published by the last
    /// arrival so every rank can emit its own trace span.
    op: Option<(OpKind, u64)>,
    /// Global ranks of stackless tasks parked `Pending` for this op's
    /// publish; drained (and woken through the task waker) by the last
    /// arrival. Thread-backed waiters park on `cv_publish` instead.
    parked_publish: Vec<DeviceId>,
    /// Stackless tasks parked waiting for the previous op's drain; woken
    /// by the last picker's reset.
    parked_drain: Vec<DeviceId>,
}

/// Shared state of one process group (all member handles point here).
///
/// The rendezvous has two distinct wait reasons, each with its own condvar
/// so a notification never wakes ranks parked for the *other* reason:
/// Collect-phase waiters park on `cv_publish` (woken once, by the last
/// arrival), while next-op entrants draining a still-Distribute slot park
/// on `cv_drain` (woken once, by the last picker). With a single shared
/// condvar every publish re-woke the drain waiters (and vice versa), and
/// each spurious wake costs a full scheduler readmission cycle.
pub(crate) struct GroupShared {
    members: Vec<DeviceId>,
    slot: Mutex<SlotState>,
    /// Woken by the last arrival when outputs are published.
    cv_publish: Condvar,
    /// Woken by the last picker when the slot resets for the next op.
    cv_drain: Condvar,
}

impl GroupShared {
    pub(crate) fn new(members: Vec<DeviceId>) -> Self {
        let p = members.len();
        GroupShared {
            members,
            slot: Mutex::new(SlotState {
                phase: Phase::Collect,
                inputs: vec![None; p],
                // Empty, like after every last-picker reset: the last
                // arrival replaces the whole vector when publishing, and a
                // fresh Collect slot must hold no stale output storage.
                outputs: Vec::new(),
                arrived: 0,
                picked: 0,
                t_max: 0.0,
                t_done: 0.0,
                op: None,
                parked_publish: Vec::new(),
                parked_drain: Vec::new(),
            }),
            cv_publish: Condvar::new(),
            cv_drain: Condvar::new(),
        }
    }

    /// Blocking fallback for a [`WakeKey::publish`] key: parks the calling
    /// thread on `cv_publish` while the slot is still collecting. One wait
    /// per call — the poll/wait driver loop re-checks by re-polling, like
    /// a condvar waiter re-checking its predicate.
    pub(crate) fn block_until_published(&self, ctx: &DeviceCtx) {
        let mut st = self.slot.lock();
        if st.phase == Phase::Collect {
            ctx.wait_on(&self.cv_publish, &mut st);
        }
    }

    /// Blocking fallback for a [`WakeKey::drain`] key: parks while the
    /// previous op is still distributing.
    pub(crate) fn block_until_drained(&self, ctx: &DeviceCtx) {
        let mut st = self.slot.lock();
        if st.phase == Phase::Distribute {
            ctx.wait_on(&self.cv_drain, &mut st);
        }
    }

    /// Wakes every rank parked in this group's rendezvous (either condvar)
    /// so it can observe the run's abort flag (see
    /// `WorldInner::abort_wake`). Locking the slot before notifying closes
    /// the race against a rank between its abort check and its wait.
    pub(crate) fn abort_wake(&self) {
        drop(self.slot.lock());
        self.cv_publish.notify_all();
        self.cv_drain.notify_all();
    }
}

/// A member's handle to a process group.
///
/// All members must invoke the same sequence of collectives (SPMD), exactly
/// like an MPI communicator or a NCCL process group.
#[derive(Clone)]
pub struct Group {
    shared: Arc<GroupShared>,
    my_index: usize,
}

impl Group {
    pub(crate) fn new(shared: Arc<GroupShared>, device: DeviceId) -> Group {
        let my_index = shared
            .members
            .iter()
            .position(|&m| m == device)
            .expect("device not in group");
        Group { shared, my_index }
    }

    /// Number of ranks in the group.
    pub fn size(&self) -> usize {
        self.shared.members.len()
    }

    /// This member's rank within the group (0-based, in member-list order).
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Global device ids of the members, in group-rank order.
    pub fn members(&self) -> &[DeviceId] {
        &self.shared.members
    }

    /// Advances an in-flight collective by one step: the poll-driven form
    /// of the rendezvous. Every rank deposits its input; the last arrival
    /// runs [`finish_spec`] (one output per rank, the op's virtual cost,
    /// kind and element-hop count); every rank leaves with its output and
    /// the charged stream's clock advanced to `max(arrival clocks) + cost`.
    /// On [`Stream::Main`] the arrival clock is the main clock; on
    /// [`Stream::Comm`] it is `max(main, comm)` and only the comm clock
    /// advances, so compute may keep accruing behind the collective.
    ///
    /// Instead of sleeping, a rank that must wait returns
    /// [`Poll::Pending`] with the wake key of the edge it needs (publish or
    /// drain); under a stackless executor it first registers itself in the
    /// slot's parked list *under the slot lock*, so the waking rank cannot
    /// miss it. Spurious re-polls re-check the phase and re-park. The
    /// blocking collectives drive this same method via [`Group::run_op`],
    /// which is what keeps the two wait styles bitwise identical.
    ///
    /// When tracing is enabled, every rank emits a [`SpanKind::Collective`]
    /// span (on its device or comm-stream track) from its arrival to the
    /// group-wide completion, and the last arrival additionally emits the
    /// group-track span(s) — one per op, or one per phase for the
    /// hierarchical schedule.
    pub fn poll_collective(&self, ctx: &DeviceCtx, op: &mut CollectiveOp) -> Poll<Tensor> {
        ctx.check_abort();
        if op.parked {
            // resumed after a Pending: the stackless analog of coming off
            // one rendezvous condvar wait
            op.parked = false;
            ctx.world.count_group_wake();
        }
        let p = self.size();
        let stream = op.stream;
        // arrival time latches on the first poll — re-polls after Pending
        // must not re-read a clock that never moved while parked
        let t_arrive = match op.t_arrive {
            Some(t) => t,
            None => {
                let t = match stream {
                    Stream::Main => ctx.clock(),
                    Stream::Comm => ctx.comm_ready(),
                };
                op.t_arrive = Some(t);
                t
            }
        };
        if p == 1 {
            // single-rank group: identity data-wise and zero cost, but still
            // one group op — record the promised stats entry (zero element
            // hops) and a zero-length trace span
            let input = op
                .input
                .take()
                .expect("collective op polled after completion");
            let done = finish_spec(op.spec, ctx, self.members(), std::slice::from_ref(&input));
            let bytes = done.elements * done.wire.bytes();
            ctx.record_stats(done.kind, done.elements, bytes);
            let t_done = t_arrive + done.cost;
            self.advance_stream(ctx, stream, t_done);
            if ctx.tracing() {
                let group = self.members().to_vec();
                ctx.trace_span_on(
                    self.device_track(ctx, stream),
                    SpanKind::Collective {
                        kind: done.kind,
                        bytes,
                        group,
                    },
                    t_arrive,
                    t_done,
                );
                self.trace_group_phases(ctx, &done, bytes, t_arrive, t_done);
            }
            let mut outs = done.outputs;
            return Poll::Ready(outs.pop().expect("finish produced no output"));
        }
        let shared = &*self.shared;
        let mut st = shared.slot.lock();
        if matches!(op.stage, CollStage::Enter) {
            if st.phase == Phase::Distribute {
                // previous op not fully drained: park until the last picker
                // resets the slot
                op.parked = true;
                if ctx.task_waker().is_some() && !st.parked_drain.contains(&ctx.rank()) {
                    st.parked_drain.push(ctx.rank());
                }
                return Poll::Pending(WakeKey::drain(&self.shared));
            }
            if st.arrived == 0 {
                // first arrival of an op: the last picker's reset (or `new`)
                // must have left no residue from the previous op
                debug_assert!(
                    st.inputs.iter().all(Option::is_none),
                    "stale inputs entering Collect"
                );
                debug_assert!(st.outputs.is_empty(), "stale outputs entering Collect");
                debug_assert_eq!(st.picked, 0, "stale pick count entering Collect");
                debug_assert_eq!(st.t_max, 0.0, "stale t_max entering Collect");
                debug_assert_eq!(st.t_done, 0.0, "stale t_done entering Collect");
                debug_assert!(st.op.is_none(), "stale op metadata entering Collect");
            }
            assert!(
                st.inputs[self.my_index].is_none(),
                "rank reentered collective"
            );
            st.inputs[self.my_index] = Some(
                op.input
                    .take()
                    .expect("collective op polled after completion"),
            );
            st.arrived += 1;
            st.t_max = st.t_max.max(t_arrive);
            op.stage = CollStage::AwaitPublish;
            if st.arrived == p {
                // last arrival: combine and publish
                let inputs: Vec<Tensor> = st.inputs.iter_mut().map(|i| i.take().unwrap()).collect();
                let mut done = finish_spec(op.spec, ctx, self.members(), &inputs);
                assert_eq!(
                    done.outputs.len(),
                    p,
                    "finish must produce one output per rank"
                );
                let bytes = done.elements * done.wire.bytes();
                st.outputs = std::mem::take(&mut done.outputs)
                    .into_iter()
                    .map(Some)
                    .collect();
                st.t_done = st.t_max + done.cost;
                st.phase = Phase::Distribute;
                st.op = Some((done.kind, bytes));
                ctx.record_stats(done.kind, done.elements, bytes);
                self.trace_group_phases(ctx, &done, bytes, st.t_max, st.t_done);
                // wakes only the p-1 Collect waiters — ranks already
                // draining toward the *next* op sit on the drain edge and
                // stay parked. Parked stackless tasks are drained under the
                // slot lock, so none can register between publish and wake.
                let wake = std::mem::take(&mut st.parked_publish);
                shared.cv_publish.notify_all();
                if let Some(w) = ctx.task_waker() {
                    for r in wake {
                        w.wake(r);
                    }
                }
                // fall through to pick our own output
            } else {
                op.parked = true;
                if ctx.task_waker().is_some() {
                    st.parked_publish.push(ctx.rank());
                }
                return Poll::Pending(WakeKey::publish(&self.shared));
            }
        } else if st.phase == Phase::Collect {
            // spurious resume: the publish we are waiting for has not
            // happened yet — re-park (condvar predicate re-check)
            op.parked = true;
            if ctx.task_waker().is_some() && !st.parked_publish.contains(&ctx.rank()) {
                st.parked_publish.push(ctx.rank());
            }
            return Poll::Pending(WakeKey::publish(&self.shared));
        }
        let out = st.outputs[self.my_index]
            .take()
            .expect("output already taken");
        let t_done = st.t_done;
        let (kind, bytes) = st.op.expect("op metadata published by last arrival");
        st.picked += 1;
        if st.picked == p {
            // last picker resets the slot *fully* for the next op — every
            // field the first arrival's clean-slot assertion checks,
            // including the output storage (a fresh Vec, so a huge op's
            // capacity is not pinned for the group's lifetime) and t_done
            st.phase = Phase::Collect;
            st.arrived = 0;
            st.picked = 0;
            st.t_max = 0.0;
            st.t_done = 0.0;
            st.outputs = Vec::new();
            st.op = None;
            let wake = std::mem::take(&mut st.parked_drain);
            shared.cv_drain.notify_all();
            if let Some(w) = ctx.task_waker() {
                for r in wake {
                    w.wake(r);
                }
            }
        }
        drop(st);
        self.advance_stream(ctx, stream, t_done);
        if ctx.tracing() {
            let group = self.members().to_vec();
            ctx.trace_span_on(
                self.device_track(ctx, stream),
                SpanKind::Collective { kind, bytes, group },
                t_arrive,
                t_done,
            );
        }
        Poll::Ready(out)
    }

    /// Blocking driver: polls the op to completion, parking the OS thread
    /// on the keyed resource whenever the poll returns `Pending`. This is
    /// the collective path of the threads and sched backends — the same
    /// state machine the stackless executor advances, waited on with a
    /// condvar instead of a wake key.
    fn run_op(&self, ctx: &DeviceCtx, input: Tensor, stream: Stream, spec: CollSpec) -> Tensor {
        let mut op = CollectiveOp::new(spec, stream, input);
        loop {
            match self.poll_collective(ctx, &mut op) {
                Poll::Ready(out) => return out,
                Poll::Pending(key) => ctx.wait_key(&key),
            }
        }
    }

    // ---- resumable starters ---------------------------------------------

    /// Starts a sum all-reduce (FP32 wire) as a resumable op; advance it
    /// with [`Group::poll_collective`]. For stackless [`crate::RankTask`]s.
    pub fn start_all_reduce(&self, t: Tensor) -> CollectiveOp {
        CollectiveOp::new(
            CollSpec::AllReduce {
                max: false,
                wire: Wire::F32,
            },
            Stream::Main,
            t,
        )
    }

    /// Starts an all-gather-cat along `dim` (FP32 wire) as a resumable op.
    pub fn start_all_gather_cat(&self, t: Tensor, dim: usize) -> CollectiveOp {
        CollectiveOp::new(
            CollSpec::AllGather {
                dim,
                wire: Wire::F32,
            },
            Stream::Main,
            t,
        )
    }

    /// Starts a barrier as a resumable op; the output tensor is empty.
    pub fn start_barrier(&self) -> CollectiveOp {
        CollectiveOp::new(CollSpec::Barrier, Stream::Main, Tensor::zeros([0]))
    }

    fn advance_stream(&self, ctx: &DeviceCtx, stream: Stream, t_done: f64) {
        match stream {
            Stream::Main => ctx.advance_to(t_done),
            Stream::Comm => ctx.comm_advance_to(t_done),
        }
    }

    fn device_track(&self, ctx: &DeviceCtx, stream: Stream) -> Track {
        match stream {
            Stream::Main => Track::Device(ctx.rank()),
            Stream::Comm => Track::DeviceComm(ctx.rank()),
        }
    }

    /// Emits this op's group-track span(s): a single span for one-phase
    /// schedules, or one labeled span per phase for the multi-phase ones
    /// (hierarchical RS/AR/AG, tree reduce/broadcast, halving-doubling
    /// RS/AG), tiling the op interval contiguously.
    fn trace_group_phases(&self, ctx: &DeviceCtx, done: &Done, bytes: u64, start: f64, end: f64) {
        if done.phases.is_empty() {
            self.trace_group_span(ctx, done.kind, bytes, start, end);
            return;
        }
        let mut t = start;
        for (i, &(kind, dt)) in done.phases.iter().enumerate() {
            // the last phase snaps to the op's end so float rounding never
            // leaves a gap in the tiling
            let stop = if i + 1 == done.phases.len() {
                end
            } else {
                t + dt
            };
            self.trace_group_span(ctx, kind, bytes, t, stop);
            t = stop;
        }
    }

    /// Emits the one-per-op span on this group's dedicated track. The span
    /// is attributed to the group's first member (not the recording rank —
    /// which rank arrives last is backend/pool-dependent), keeping trace
    /// snapshots bitwise identical across backends.
    fn trace_group_span(&self, ctx: &DeviceCtx, kind: OpKind, bytes: u64, start: f64, end: f64) {
        if ctx.tracing() {
            let members = self.members();
            ctx.trace_span_as(
                members[0],
                Track::Group(group_track_name(members)),
                SpanKind::Collective {
                    kind,
                    bytes,
                    group: members.to_vec(),
                },
                start,
                end,
            );
        }
    }

    // ---- collectives ----------------------------------------------------

    /// Sum all-reduce at FP32 wire width. The schedule (flat ring vs
    /// hierarchical) is chosen per call from the alpha-beta cost model on
    /// the actual link graph; the reduction itself always applies in
    /// canonical group-rank order, so results are bitwise identical under
    /// either schedule.
    pub fn all_reduce(&self, ctx: &DeviceCtx, t: Tensor) -> Tensor {
        self.all_reduce_wire_on(ctx, t, Wire::F32, Stream::Main)
    }

    /// Sum all-reduce at FP16 wire width (mixed-precision gradient traffic).
    pub fn all_reduce_half(&self, ctx: &DeviceCtx, t: Tensor) -> Tensor {
        self.all_reduce_wire_on(ctx, t, Wire::F16, Stream::Main)
    }

    /// Launches a sum all-reduce on the comm stream: the reduced tensor is
    /// returned immediately (data movement is physical) while its latency
    /// accrues on [`DeviceCtx::comm_clock`], leaving the main clock free to
    /// keep charging compute. Call [`DeviceCtx::comm_sync`] before the
    /// virtual time of the result matters (e.g. before `optimizer.step`).
    pub fn all_reduce_async(&self, ctx: &DeviceCtx, t: Tensor) -> Tensor {
        self.all_reduce_wire_on(ctx, t, Wire::F32, Stream::Comm)
    }

    /// FP16-wire variant of [`Group::all_reduce_async`].
    pub fn all_reduce_async_half(&self, ctx: &DeviceCtx, t: Tensor) -> Tensor {
        self.all_reduce_wire_on(ctx, t, Wire::F16, Stream::Comm)
    }

    /// Sum all-reduce at int8 wire width (quantized gradient traffic: the
    /// caller has already snapped `t` to a shared 255-step grid, so only
    /// 1 byte/element crosses the wire). Data-plane semantics are identical
    /// to [`Group::all_reduce`]; only the modeled bytes differ.
    pub fn all_reduce_i8(&self, ctx: &DeviceCtx, t: Tensor) -> Tensor {
        self.all_reduce_wire_on(ctx, t, Wire::I8, Stream::Main)
    }

    /// Comm-stream variant of [`Group::all_reduce_i8`].
    pub fn all_reduce_async_i8(&self, ctx: &DeviceCtx, t: Tensor) -> Tensor {
        self.all_reduce_wire_on(ctx, t, Wire::I8, Stream::Comm)
    }

    /// Sum all-reduce of a top-k-sparsified tensor: `t` is dense but holds
    /// at most `k` nonzeros, and the wire carries only those as (u32 index,
    /// f32 value) pairs — an all-gather of `k` pairs per rank, summed
    /// locally (see [`CollSpec::SparseAllReduce`]). The result is the dense
    /// rank-ordered sum, bitwise identical to [`Group::all_reduce`] of the
    /// same tensors. Unlike the dense paths the caller's mean-scale must
    /// still be applied afterward.
    pub fn sparse_all_reduce(&self, ctx: &DeviceCtx, t: Tensor, k: usize) -> Tensor {
        self.run_op(ctx, t, Stream::Main, CollSpec::SparseAllReduce { k })
    }

    /// Comm-stream variant of [`Group::sparse_all_reduce`].
    pub fn sparse_all_reduce_async(&self, ctx: &DeviceCtx, t: Tensor, k: usize) -> Tensor {
        self.run_op(ctx, t, Stream::Comm, CollSpec::SparseAllReduce { k })
    }

    fn all_reduce_wire_on(&self, ctx: &DeviceCtx, t: Tensor, wire: Wire, stream: Stream) -> Tensor {
        self.run_op(ctx, t, stream, CollSpec::AllReduce { max: false, wire })
    }

    /// All-gather with concatenation along `dim`: every rank contributes a
    /// shard, every rank receives the full concatenation (in rank order).
    pub fn all_gather_cat(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.all_gather_cat_wire(ctx, t, dim, Wire::F32)
    }

    /// FP16-wire variant of [`Group::all_gather_cat`].
    pub fn all_gather_cat_half(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.all_gather_cat_wire(ctx, t, dim, Wire::F16)
    }

    fn all_gather_cat_wire(&self, ctx: &DeviceCtx, t: Tensor, dim: usize, wire: Wire) -> Tensor {
        self.run_op(ctx, t, Stream::Main, CollSpec::AllGather { dim, wire })
    }

    /// Reduce-scatter: sums all contributions, then each rank keeps its
    /// rank-th chunk along `dim`.
    pub fn reduce_scatter(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.reduce_scatter_wire_on(ctx, t, dim, Wire::F32, Stream::Main)
    }

    /// FP16-wire variant of [`Group::reduce_scatter`].
    pub fn reduce_scatter_half(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.reduce_scatter_wire_on(ctx, t, dim, Wire::F16, Stream::Main)
    }

    /// Comm-stream variant of [`Group::reduce_scatter`] (same contract as
    /// [`Group::all_reduce_async`]: data now, time on the comm clock).
    pub fn reduce_scatter_async(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.reduce_scatter_wire_on(ctx, t, dim, Wire::F32, Stream::Comm)
    }

    /// FP16-wire variant of [`Group::reduce_scatter_async`].
    pub fn reduce_scatter_async_half(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.reduce_scatter_wire_on(ctx, t, dim, Wire::F16, Stream::Comm)
    }

    /// Int8-wire variant of [`Group::reduce_scatter`] (quantized ZeRO
    /// gradient shards; the caller pre-snaps to the quantization grid).
    pub fn reduce_scatter_i8(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.reduce_scatter_wire_on(ctx, t, dim, Wire::I8, Stream::Main)
    }

    /// Comm-stream variant of [`Group::reduce_scatter_i8`].
    pub fn reduce_scatter_async_i8(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.reduce_scatter_wire_on(ctx, t, dim, Wire::I8, Stream::Comm)
    }

    fn reduce_scatter_wire_on(
        &self,
        ctx: &DeviceCtx,
        t: Tensor,
        dim: usize,
        wire: Wire,
        stream: Stream,
    ) -> Tensor {
        self.run_op(ctx, t, stream, CollSpec::ReduceScatter { dim, wire })
    }

    /// Broadcast from group-rank `root` at FP32 wire width. Non-root ranks'
    /// inputs are ignored (pass an empty tensor, e.g. `Tensor::zeros([0])`).
    pub fn broadcast(&self, ctx: &DeviceCtx, t: Tensor, root: usize) -> Tensor {
        self.broadcast_wire(ctx, t, root, Wire::F32)
    }

    /// FP16-wire variant of [`Group::broadcast`] (mixed-precision parameter
    /// fan-out charges half the bytes on the wire).
    pub fn broadcast_half(&self, ctx: &DeviceCtx, t: Tensor, root: usize) -> Tensor {
        self.broadcast_wire(ctx, t, root, Wire::F16)
    }

    fn broadcast_wire(&self, ctx: &DeviceCtx, t: Tensor, root: usize, wire: Wire) -> Tensor {
        assert!(root < self.size(), "broadcast root {root} out of range");
        self.run_op(ctx, t, Stream::Main, CollSpec::Broadcast { root, wire })
    }

    /// Scatter from group-rank `root`: the root's tensor is chunked along
    /// `dim` into `size()` pieces; rank i receives piece i. Non-root inputs
    /// are ignored.
    pub fn scatter(&self, ctx: &DeviceCtx, t: Tensor, dim: usize, root: usize) -> Tensor {
        self.scatter_wire(ctx, t, dim, root, Wire::F32)
    }

    /// FP16-wire variant of [`Group::scatter`].
    pub fn scatter_half(&self, ctx: &DeviceCtx, t: Tensor, dim: usize, root: usize) -> Tensor {
        self.scatter_wire(ctx, t, dim, root, Wire::F16)
    }

    fn scatter_wire(
        &self,
        ctx: &DeviceCtx,
        t: Tensor,
        dim: usize,
        root: usize,
        wire: Wire,
    ) -> Tensor {
        assert!(root < self.size(), "scatter root {root} out of range");
        self.run_op(ctx, t, Stream::Main, CollSpec::Scatter { dim, root, wire })
    }

    /// Gather to group-rank `root` with concatenation along `dim`; the root
    /// receives the concatenation, other ranks receive an empty tensor.
    pub fn gather_cat(&self, ctx: &DeviceCtx, t: Tensor, dim: usize, root: usize) -> Tensor {
        self.gather_cat_wire(ctx, t, dim, root, Wire::F32)
    }

    /// FP16-wire variant of [`Group::gather_cat`].
    pub fn gather_cat_half(&self, ctx: &DeviceCtx, t: Tensor, dim: usize, root: usize) -> Tensor {
        self.gather_cat_wire(ctx, t, dim, root, Wire::F16)
    }

    fn gather_cat_wire(
        &self,
        ctx: &DeviceCtx,
        t: Tensor,
        dim: usize,
        root: usize,
        wire: Wire,
    ) -> Tensor {
        assert!(root < self.size(), "gather root {root} out of range");
        self.run_op(ctx, t, Stream::Main, CollSpec::Gather { dim, root, wire })
    }

    /// All-to-all: each rank's tensor is chunked along `dim`; rank i ends
    /// with the concatenation (along `dim`) of everyone's chunk i.
    pub fn all_to_all(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.all_to_all_wire(ctx, t, dim, Wire::F32)
    }

    /// FP16-wire variant of [`Group::all_to_all`].
    pub fn all_to_all_half(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.all_to_all_wire(ctx, t, dim, Wire::F16)
    }

    fn all_to_all_wire(&self, ctx: &DeviceCtx, t: Tensor, dim: usize, wire: Wire) -> Tensor {
        self.run_op(ctx, t, Stream::Main, CollSpec::AllToAll { dim, wire })
    }

    /// Elementwise-max all-reduce (used by distributed gradient-norm and
    /// loss-scale synchronization).
    pub fn all_reduce_max(&self, ctx: &DeviceCtx, t: Tensor) -> Tensor {
        self.all_reduce_max_wire(ctx, t, Wire::F32)
    }

    /// FP16-wire variant of [`Group::all_reduce_max`].
    pub fn all_reduce_max_half(&self, ctx: &DeviceCtx, t: Tensor) -> Tensor {
        self.all_reduce_max_wire(ctx, t, Wire::F16)
    }

    fn all_reduce_max_wire(&self, ctx: &DeviceCtx, t: Tensor, wire: Wire) -> Tensor {
        self.run_op(
            ctx,
            t,
            Stream::Main,
            CollSpec::AllReduce { max: true, wire },
        )
    }

    /// Sum-reduce to group-rank `root`: the root receives the elementwise
    /// sum of all contributions, other ranks receive an empty tensor.
    /// (Cost model: the mirror image of a pipelined broadcast.)
    pub fn reduce_sum(&self, ctx: &DeviceCtx, t: Tensor, root: usize) -> Tensor {
        self.reduce_sum_wire(ctx, t, root, Wire::F32)
    }

    /// FP16-wire variant of [`Group::reduce_sum`].
    pub fn reduce_sum_half(&self, ctx: &DeviceCtx, t: Tensor, root: usize) -> Tensor {
        self.reduce_sum_wire(ctx, t, root, Wire::F16)
    }

    fn reduce_sum_wire(&self, ctx: &DeviceCtx, t: Tensor, root: usize, wire: Wire) -> Tensor {
        assert!(root < self.size(), "reduce root {root} out of range");
        self.run_op(ctx, t, Stream::Main, CollSpec::ReduceSum { root, wire })
    }

    /// Synchronization barrier; costs one latency-bound all-reduce of a
    /// single FP32 wire element.
    pub fn barrier(&self, ctx: &DeviceCtx) {
        let _ = self.run_op(ctx, Tensor::zeros([0]), Stream::Main, CollSpec::Barrier);
    }
}

/// Elementwise sum of the rank-ordered rendezvous inputs. On the parallel
/// path the element range is chunked across the `tensor::par` pool while
/// each chunk still accumulates ranks in ascending order — the per-element
/// float sequence is exactly the serial loop's, so the result is
/// bitwise-identical at any thread count (the repo's arithmetic-equivalence
/// contract for collectives).
fn reduce_sum_rank_ordered(inputs: &[Tensor]) -> Tensor {
    let mut sum = inputs[0].clone();
    if inputs.len() > 1 && colossalai_tensor::par::par_eligible(sum.numel()) {
        let srcs: Vec<&[f32]> = inputs[1..].iter().map(|t| t.data()).collect();
        colossalai_tensor::par::par_chunks_static(
            sum.data_mut(),
            colossalai_tensor::par::MIN_CHUNK,
            |off, dst| {
                let len = dst.len();
                for s in &srcs {
                    colossalai_tensor::axpy_slices(dst, 1.0, &s[off..off + len]);
                }
            },
        );
        return sum;
    }
    for x in &inputs[1..] {
        sum.axpy(1.0, x);
    }
    sum
}

/// Elementwise max of the rank-ordered rendezvous inputs; parallel over
/// element chunks like [`reduce_sum_rank_ordered`] (max is exact, but the
/// ascending-rank order is kept anyway for uniformity).
fn reduce_max_rank_ordered(inputs: &[Tensor]) -> Tensor {
    let mut acc = inputs[0].clone();
    if inputs.len() > 1 && colossalai_tensor::par::par_eligible(acc.numel()) {
        let srcs: Vec<&[f32]> = inputs[1..].iter().map(|t| t.data()).collect();
        colossalai_tensor::par::par_chunks_static(
            acc.data_mut(),
            colossalai_tensor::par::MIN_CHUNK,
            |off, dst| {
                let len = dst.len();
                for s in &srcs {
                    for (d, &v) in dst.iter_mut().zip(&s[off..off + len]) {
                        *d = f32::max(*d, v);
                    }
                }
            },
        );
        return acc;
    }
    for x in &inputs[1..] {
        acc = acc.zip(x, f32::max);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use colossalai_topology::systems::{system_i, system_ii, system_iii};

    #[test]
    fn all_reduce_sums_contributions() {
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let t = Tensor::full([2, 2], (ctx.rank() + 1) as f32);
            g.all_reduce(ctx, t)
        });
        for o in &out {
            assert!(o.allclose(&Tensor::full([2, 2], 10.0), 0.0));
        }
    }

    #[test]
    fn all_reduce_deterministic_order() {
        // reductions in rank order must be bitwise stable across runs
        let world = World::new(system_i());
        let a = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            g.all_reduce(ctx, Tensor::full([8], 0.1 + ctx.rank() as f32 * 1e-7))
        });
        let b = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            g.all_reduce(ctx, Tensor::full([8], 0.1 + ctx.rank() as f32 * 1e-7))
        });
        assert_eq!(a[0].data(), b[0].data());
    }

    #[test]
    fn all_gather_rank_order() {
        let world = World::new(system_i());
        let out = world.run_on(3, |ctx| {
            let g = ctx.world_group(3);
            g.all_gather_cat(ctx, Tensor::full([1, 2], ctx.rank() as f32), 0)
        });
        for o in &out {
            assert_eq!(o.dims(), &[3, 2]);
            assert_eq!(o.data(), &[0., 0., 1., 1., 2., 2.]);
        }
    }

    #[test]
    fn reduce_scatter_then_all_gather_equals_all_reduce() {
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let t = Tensor::arange(8).reshaped([8]);
            let full = g.all_reduce(ctx, t.clone());
            let mine = g.reduce_scatter(ctx, t, 0);
            let rebuilt = g.all_gather_cat(ctx, mine, 0);
            (full, rebuilt)
        });
        for (full, rebuilt) in &out {
            assert_eq!(full.data(), rebuilt.data());
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let t = if ctx.rank() == 2 {
                Tensor::full([3], 42.0)
            } else {
                Tensor::zeros([0])
            };
            g.broadcast(ctx, t, 2)
        });
        for o in &out {
            assert!(o.allclose(&Tensor::full([3], 42.0), 0.0));
        }
    }

    #[test]
    fn scatter_distributes_chunks() {
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let t = if ctx.rank() == 0 {
                Tensor::arange(8)
            } else {
                Tensor::zeros([0])
            };
            g.scatter(ctx, t, 0, 0)
        });
        for (r, o) in out.iter().enumerate() {
            assert_eq!(o.data(), &[(2 * r) as f32, (2 * r + 1) as f32]);
        }
    }

    #[test]
    fn gather_only_root_receives() {
        let world = World::new(system_i());
        let out = world.run_on(3, |ctx| {
            let g = ctx.world_group(3);
            g.gather_cat(ctx, Tensor::full([1], ctx.rank() as f32), 0, 1)
        });
        assert_eq!(out[0].numel(), 0);
        assert_eq!(out[1].data(), &[0., 1., 2.]);
        assert_eq!(out[2].numel(), 0);
    }

    #[test]
    fn all_to_all_transposes_chunks() {
        let world = World::new(system_i());
        let out = world.run_on(2, |ctx| {
            let g = ctx.world_group(2);
            // rank r holds [r*10, r*10+1]
            let t = Tensor::from_vec(
                [2],
                vec![ctx.rank() as f32 * 10.0, ctx.rank() as f32 * 10.0 + 1.0],
            );
            g.all_to_all(ctx, t, 0)
        });
        assert_eq!(out[0].data(), &[0., 10.]);
        assert_eq!(out[1].data(), &[1., 11.]);
    }

    #[test]
    fn all_reduce_max_takes_elementwise_max() {
        let world = World::new(system_i());
        let out = world.run_on(3, |ctx| {
            let g = ctx.world_group(3);
            // rank r holds [r, -r]
            let t = Tensor::from_vec([2], vec![ctx.rank() as f32, -(ctx.rank() as f32)]);
            g.all_reduce_max(ctx, t)
        });
        for o in &out {
            assert_eq!(o.data(), &[2.0, 0.0]);
        }
    }

    #[test]
    fn subgroups_are_independent() {
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let members: Vec<usize> = if ctx.rank() < 2 {
                vec![0, 1]
            } else {
                vec![2, 3]
            };
            let g = ctx.group(&members);
            g.all_reduce(ctx, Tensor::scalar(1.0)).item()
        });
        assert_eq!(out, vec![2.0; 4]);
    }

    #[test]
    fn collective_advances_clock_per_cost_model() {
        let bytes: usize = 1 << 20;
        let n = bytes / 4;
        for (cluster, name) in [(system_i(), "I"), (system_ii(), "II")] {
            // the executed collective must charge exactly what the selected
            // schedule's model predicts (8 ranks: halving-doubling)
            let group: Vec<usize> = (0..8).collect();
            let sel = cost::select_allreduce_algo(&cluster, &group, bytes as u64);
            let expected = cost::allreduce_time_with(sel, &cluster, &group, bytes as u64);
            let world = World::new(cluster);
            let clocks = world.run(|ctx| {
                let g = ctx.world_group(8);
                let _ = g.all_reduce(ctx, Tensor::zeros([n]));
                ctx.clock()
            });
            for c in &clocks {
                assert!(
                    (c - expected).abs() < 1e-12,
                    "system {name}: {c} vs {expected}"
                );
            }
        }
        // System II must be slower than System I for the same collective
        let t1 = colossalai_topology::cost::allreduce_time(
            &system_i(),
            &(0..8).collect::<Vec<_>>(),
            bytes as u64,
        );
        let t2 = colossalai_topology::cost::allreduce_time(
            &system_ii(),
            &(0..8).collect::<Vec<_>>(),
            bytes as u64,
        );
        assert!(t2 > t1);
    }

    #[test]
    fn stats_count_ring_allreduce_elements() {
        let world = World::new(system_i());
        world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let _ = g.all_reduce(ctx, Tensor::zeros([100]));
        });
        let stats = world.stats();
        // 2(p-1) * n = 2*3*100
        assert_eq!(stats.elements_of(OpKind::AllReduce), 600);
        assert_eq!(stats.ops_of(OpKind::AllReduce), 1);
    }

    #[test]
    fn half_wire_halves_bytes() {
        let world = World::new(system_i());
        world.run_on(2, |ctx| {
            let g = ctx.world_group(2);
            let _ = g.all_reduce(ctx, Tensor::zeros([100]));
        });
        let full = world.stats().bytes;
        let world2 = World::new(system_i());
        world2.run_on(2, |ctx| {
            let g = ctx.world_group(2);
            let _ = g.all_reduce_half(ctx, Tensor::zeros([100]));
        });
        let half = world2.stats().bytes;
        assert_eq!(full, 2 * half);
    }

    #[test]
    fn broadcast_half_wire_halves_bytes_and_time() {
        let payload = |rank: usize| {
            if rank == 0 {
                Tensor::zeros([1000])
            } else {
                Tensor::zeros([0])
            }
        };
        let world = World::new(system_i());
        let full_clock = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let _ = g.broadcast(ctx, payload(ctx.rank()), 0);
            ctx.clock()
        });
        let full_bytes = world.stats().bytes;
        let world2 = World::new(system_i());
        let half_clock = world2.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let _ = g.broadcast_half(ctx, payload(ctx.rank()), 0);
            ctx.clock()
        });
        let half_bytes = world2.stats().bytes;
        assert_eq!(full_bytes, 2 * half_bytes);
        // the virtual clock must also see the cheaper wire, not just stats
        assert!(half_clock[0] < full_clock[0]);
    }

    #[test]
    fn broadcast_outputs_share_storage_across_ranks() {
        // the fan-out of one buffer to p ranks must be p handles to one
        // allocation, not p deep copies
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let t = if ctx.rank() == 0 {
                Tensor::full([64], 3.0)
            } else {
                Tensor::zeros([0])
            };
            g.broadcast(ctx, t, 0)
        });
        for o in &out[1..] {
            assert!(o.shares_storage(&out[0]));
        }
    }

    #[test]
    fn mutating_one_collective_output_never_alters_siblings() {
        let world = World::new(system_i());
        let mut out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            g.all_reduce(ctx, Tensor::full([8], (ctx.rank() + 1) as f32))
        });
        assert!(out[1].shares_storage(&out[0]));
        out[0].scale(0.0); // rank 0 scrubs its copy, e.g. an optimizer step
        assert!(!out[0].shares_storage(&out[1]));
        for o in &out[1..] {
            assert!(
                o.allclose(&Tensor::full([8], 10.0), 0.0),
                "sibling rank was corrupted"
            );
        }
        // same property through the gather path
        let mut gathered = world.run_on(2, |ctx| {
            let g = ctx.world_group(2);
            g.all_gather_cat(ctx, Tensor::full([2], ctx.rank() as f32), 0)
        });
        assert!(gathered[0].shares_storage(&gathered[1]));
        gathered[1].data_mut()[0] = 99.0;
        assert_eq!(gathered[0].data(), &[0., 0., 1., 1.]);
    }

    #[test]
    fn repeated_collectives_reuse_slot() {
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let mut acc = 0.0;
            for i in 0..50 {
                acc += g.all_reduce(ctx, Tensor::scalar(i as f32)).item();
            }
            acc
        });
        let expect: f32 = (0..50).map(|i| (i * 4) as f32).sum();
        assert_eq!(out, vec![expect; 4]);
    }

    #[test]
    fn many_concurrent_groups_stay_deterministic() {
        // 8 devices using overlapping row/col/pair groups concurrently for
        // many rounds: results and virtual clocks must replay identically
        let run = || {
            let world = World::new(system_i());

            world.run(|ctx| {
                let r = ctx.rank();
                let row = ctx.group(&if r < 4 {
                    vec![0, 1, 2, 3]
                } else {
                    vec![4, 5, 6, 7]
                });
                let col: Vec<usize> = (0..2).map(|q| q * 4 + (r % 4)).collect();
                let col = ctx.group(&col);
                let mut acc = Tensor::full([16], r as f32 * 0.01);
                for _ in 0..20 {
                    acc = row.all_reduce(ctx, acc);
                    acc = col.all_reduce(ctx, acc);
                    acc.scale(0.125);
                }
                (acc, ctx.clock())
            })
        };
        let a = run();
        let b = run();
        for ((ta, ca), (tb, cb)) in a.iter().zip(&b) {
            assert_eq!(ta.data(), tb.data(), "tensor results must replay");
            assert_eq!(ca, cb, "virtual clocks must replay");
        }
    }

    #[test]
    fn single_rank_group_is_identity() {
        let world = World::new(system_i());
        let out = world.run_on(1, |ctx| {
            let g = ctx.world_group(1);
            let t = g.all_reduce(ctx, Tensor::full([3], 7.0));
            (t, ctx.clock())
        });
        assert!(out[0].0.allclose(&Tensor::full([3], 7.0), 0.0));
        assert_eq!(out[0].1, 0.0);
    }

    #[test]
    fn single_rank_group_still_records_stats() {
        // p == 1 used to skip record_stats entirely; the op must still show
        // up in the ledger (with zero element hops — nothing crosses a wire)
        let world = World::new(system_i());
        world.run_on(1, |ctx| {
            let g = ctx.world_group(1);
            let _ = g.all_reduce(ctx, Tensor::full([3], 7.0));
            g.barrier(ctx);
        });
        let stats = world.stats();
        assert_eq!(stats.ops_of(OpKind::AllReduce), 1);
        assert_eq!(stats.elements_of(OpKind::AllReduce), 0);
        assert_eq!(stats.ops_of(OpKind::Barrier), 1);
        assert_eq!(stats.bytes, 0);
    }

    #[test]
    fn half_wire_halves_bytes_for_every_collective() {
        // the formerly hardcoded 4-byte ops must all bill through Wire
        type Op = fn(&Group, &DeviceCtx) -> Tensor;
        let cases: Vec<(Op, Op, OpKind)> = vec![
            (
                |g, ctx| g.scatter(ctx, Tensor::arange(8), 0, 0),
                |g, ctx| g.scatter_half(ctx, Tensor::arange(8), 0, 0),
                OpKind::Scatter,
            ),
            (
                |g, ctx| g.gather_cat(ctx, Tensor::full([5], 1.0), 0, 0),
                |g, ctx| g.gather_cat_half(ctx, Tensor::full([5], 1.0), 0, 0),
                OpKind::Gather,
            ),
            (
                |g, ctx| g.all_to_all(ctx, Tensor::arange(8), 0),
                |g, ctx| g.all_to_all_half(ctx, Tensor::arange(8), 0),
                OpKind::AllToAll,
            ),
            (
                |g, ctx| g.all_reduce_max(ctx, Tensor::full([9], 2.0)),
                |g, ctx| g.all_reduce_max_half(ctx, Tensor::full([9], 2.0)),
                OpKind::AllReduce,
            ),
            (
                |g, ctx| g.reduce_sum(ctx, Tensor::full([7], 3.0), 0),
                |g, ctx| g.reduce_sum_half(ctx, Tensor::full([7], 3.0), 0),
                OpKind::Reduce,
            ),
        ];
        for (full_op, half_op, kind) in cases {
            let world = World::new(system_i());
            world.run_on(4, |ctx| {
                let g = ctx.world_group(4);
                let _ = full_op(&g, ctx);
            });
            let full = world.stats().bytes;
            let world2 = World::new(system_i());
            world2.run_on(4, |ctx| {
                let g = ctx.world_group(4);
                let _ = half_op(&g, ctx);
            });
            let half = world2.stats().bytes;
            assert!(full > 0, "{kind:?} must bill nonzero bytes");
            assert_eq!(full, 2 * half, "{kind:?} half wire must halve bytes");
        }
    }

    #[test]
    fn uneven_all_to_all_counts_exact_elements() {
        // n = 10, p = 4: chunks are 3/3/2/2. The old accounting truncated to
        // n/p and undercounted; each rank wires out n minus its kept chunk,
        // and the kept chunks sum to one tensor: (p-1)*n = 30 element hops.
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let base = ctx.rank() as f32 * 100.0;
            let t = Tensor::from_vec([10], (0..10).map(|i| base + i as f32).collect());
            g.all_to_all(ctx, t, 0)
        });
        // rank 0 gets everyone's first (3-element) chunk
        assert_eq!(
            out[0].data(),
            &[0., 1., 2., 100., 101., 102., 200., 201., 202., 300., 301., 302.]
        );
        // rank 2 gets everyone's third (2-element) chunk
        assert_eq!(out[2].data(), &[6., 7., 106., 107., 206., 207., 306., 307.]);
        let stats = world.stats();
        assert_eq!(stats.elements_of(OpKind::AllToAll), 30);
        assert_eq!(stats.bytes, 30 * 4);
    }

    #[test]
    fn uneven_scatter_counts_exact_elements() {
        // n = 10, p = 4 from root 0: root keeps its 3-element chunk and
        // wires out the remaining 7 elements
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let t = if ctx.rank() == 0 {
                Tensor::arange(10)
            } else {
                Tensor::zeros([0])
            };
            g.scatter(ctx, t, 0, 0)
        });
        assert_eq!(out[0].data(), &[0., 1., 2.]);
        assert_eq!(out[1].data(), &[3., 4., 5.]);
        assert_eq!(out[2].data(), &[6., 7.]);
        assert_eq!(out[3].data(), &[8., 9.]);
        let stats = world.stats();
        assert_eq!(stats.elements_of(OpKind::Scatter), 7);
        assert_eq!(stats.bytes, 7 * 4);
    }

    #[test]
    fn hierarchical_allreduce_charges_modeled_time_and_hops() {
        // System III: 16 nodes x 4 GPUs. A 16-rank world group spans 4 nodes,
        // so the selector must pick the hierarchical schedule and charge its
        // (cheaper) time and element hops.
        let n: usize = 1 << 18; // 1 MB: bandwidth-dominated
        let group: Vec<usize> = (0..16).collect();
        let cluster = system_iii();
        let bytes = (n * 4) as u64;
        assert_eq!(
            cost::select_allreduce_algo(&cluster, &group, bytes),
            AllReduceAlgo::Hierarchical
        );
        let expected = cost::hierarchical_allreduce_time(&cluster, &group, bytes);
        let flat = cost::allreduce_time(&cluster, &group, bytes);
        let world = World::new(cluster.clone());
        let clocks = world.run_on(16, |ctx| {
            let g = ctx.world_group(16);
            let _ = g.all_reduce(ctx, Tensor::zeros([n]));
            ctx.clock()
        });
        for c in &clocks {
            assert!((c - expected).abs() < 1e-12, "{c} vs {expected}");
            assert!(*c < flat, "hierarchical must beat the flat ring");
        }
        let hops = cost::hierarchical_allreduce_elements(&cluster, &group, n as u64).unwrap();
        assert_eq!(world.stats().elements_of(OpKind::AllReduce), hops);
        assert!(hops < 2 * 15 * n as u64, "fewer hops than the flat ring");
    }

    #[test]
    fn forced_algo_pins_the_schedule() {
        let n: usize = 1 << 18;
        let group: Vec<usize> = (0..16).collect();
        let cluster = system_iii();
        let flat_t = cost::allreduce_time(&cluster, &group, (n * 4) as u64);
        let run = |algo| {
            let world = World::new(system_iii());
            world.force_allreduce_algo(algo);
            world.run_on(16, |ctx| {
                let g = ctx.world_group(16);
                let t = g.all_reduce(ctx, Tensor::full([n], 0.1 + ctx.rank() as f32 * 1e-6));
                (t, ctx.clock())
            })
        };
        let flat = run(Some(AllReduceAlgo::FlatRing));
        let hier = run(Some(AllReduceAlgo::Hierarchical));
        let tree = run(Some(AllReduceAlgo::Tree));
        let rhd = run(Some(AllReduceAlgo::RecursiveHalvingDoubling));
        let auto = run(None);
        assert!((flat[0].1 - flat_t).abs() < 1e-12);
        assert!(hier[0].1 < flat[0].1);
        assert_eq!(auto[0].1, hier[0].1, "auto must select hierarchical here");
        let tree_t = cost::tree_allreduce_time(&cluster, &group, (n * 4) as u64);
        let rhd_t = cost::rhd_allreduce_time(&cluster, &group, (n * 4) as u64);
        assert!((tree[0].1 - tree_t).abs() < 1e-12);
        assert!((rhd[0].1 - rhd_t).abs() < 1e-12);
        // bitwise-identical data under every schedule (canonical rank order)
        assert_eq!(flat[0].0.data(), hier[0].0.data());
        assert_eq!(flat[0].0.data(), auto[0].0.data());
        assert_eq!(flat[0].0.data(), tree[0].0.data());
        assert_eq!(flat[0].0.data(), rhd[0].0.data());
    }

    #[test]
    fn tree_and_rhd_charge_modeled_time_on_ragged_payloads() {
        // n = 101 divides by neither 8 nor the halving-doubling halves;
        // the schedules must still charge the exact modeled time, count the
        // exact 2 (p-1) n element hops, and agree bitwise with the ring
        let n: usize = 101;
        let group: Vec<usize> = (0..8).collect();
        let cluster = system_ii();
        let run = |algo| {
            let world = World::new(system_ii());
            world.force_allreduce_algo(Some(algo));
            let out = world.run_on(8, |ctx| {
                let g = ctx.world_group(8);
                let t = g.all_reduce(ctx, Tensor::full([n], 0.7 + ctx.rank() as f32 * 1e-6));
                (t, ctx.clock())
            });
            (out, world.stats())
        };
        let (flat, flat_stats) = run(AllReduceAlgo::FlatRing);
        let (tree, tree_stats) = run(AllReduceAlgo::Tree);
        let (rhd, rhd_stats) = run(AllReduceAlgo::RecursiveHalvingDoubling);
        let bytes = (n * 4) as u64;
        let tree_t = cost::tree_allreduce_time(&cluster, &group, bytes);
        let rhd_t = cost::rhd_allreduce_time(&cluster, &group, bytes);
        assert!(
            (tree[0].1 - tree_t).abs() < 1e-12,
            "{} vs {tree_t}",
            tree[0].1
        );
        assert!((rhd[0].1 - rhd_t).abs() < 1e-12, "{} vs {rhd_t}", rhd[0].1);
        assert_eq!(flat[0].0.data(), tree[0].0.data());
        assert_eq!(flat[0].0.data(), rhd[0].0.data());
        // all three lossless schedules move every contribution to every
        // rank exactly once each way: 2 * 7 * 101 hops, at the F32 wire
        let hops = 2 * 7 * n as u64;
        for stats in [&flat_stats, &tree_stats, &rhd_stats] {
            assert_eq!(stats.elements_of(OpKind::AllReduce), hops);
            assert_eq!(stats.bytes, hops * Wire::F32.bytes());
        }
    }

    #[test]
    fn tree_and_rhd_traces_have_two_group_phases() {
        let cases = [
            (AllReduceAlgo::Tree, vec![OpKind::Reduce, OpKind::Broadcast]),
            (
                AllReduceAlgo::RecursiveHalvingDoubling,
                vec![OpKind::ReduceScatter, OpKind::AllGather],
            ),
        ];
        for (algo, want) in cases {
            let world = World::new(system_i());
            world.enable_tracing();
            world.force_allreduce_algo(Some(algo));
            world.run_on(8, |ctx| {
                let g = ctx.world_group(8);
                let _ = g.all_reduce(ctx, Tensor::zeros([1 << 16]));
            });
            let spans = world.trace();
            let group_spans: Vec<_> = spans
                .iter()
                .filter(|s| matches!(s.track, Track::Group(_)))
                .collect();
            assert_eq!(group_spans.len(), 2, "{algo:?}");
            let kinds: Vec<OpKind> = group_spans
                .iter()
                .map(|s| match &s.kind {
                    SpanKind::Collective { kind, .. } => *kind,
                    other => panic!("unexpected span {other:?}"),
                })
                .collect();
            assert_eq!(kinds, want, "{algo:?}");
            // phases tile the op interval contiguously
            assert_eq!(group_spans[0].end, group_spans[1].start);
        }
    }

    #[test]
    fn async_allreduce_overlaps_compute() {
        let world = World::new(system_ii());
        let n: usize = 1 << 20;
        let comm_t = cost::allreduce_time(&system_ii(), &(0..4).collect::<Vec<_>>(), 4 * n as u64);
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let red = g.all_reduce_async(ctx, Tensor::zeros([n]));
            let launched = ctx.clock();
            // compute that outlasts the collective
            ctx.charge_seconds(10.0 * comm_t);
            ctx.comm_sync();
            (red, launched, ctx.clock(), ctx.comm_clock())
        });
        for (red, launched, clock, comm_clock) in &out {
            assert_eq!(red.numel(), n);
            assert_eq!(*launched, 0.0, "launch must not advance the main clock");
            // the collective fully hides behind compute
            assert!((clock - 10.0 * comm_t).abs() < 1e-12, "{clock}");
            assert_eq!(clock, comm_clock, "comm_sync joins the streams");
        }
        // blocking baseline: compute + collective serialize
        let world2 = World::new(system_ii());
        let blocking = world2.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let _ = g.all_reduce(ctx, Tensor::zeros([n]));
            ctx.charge_seconds(10.0 * comm_t);
            ctx.clock()
        });
        assert!(blocking[0] > out[0].2, "async must be strictly faster");
    }

    #[test]
    fn async_allreduce_serializes_on_comm_stream() {
        // two async ops back-to-back queue on the comm stream: the second
        // starts when the first ends, not at the launch clock
        let world = World::new(system_ii());
        let n: usize = 1 << 20;
        let group: Vec<usize> = (0..4).collect();
        let sel = cost::select_allreduce_algo(&system_ii(), &group, 4 * n as u64);
        let one = cost::allreduce_time_with(sel, &system_ii(), &group, 4 * n as u64);
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let _ = g.all_reduce_async(ctx, Tensor::zeros([n]));
            let _ = g.all_reduce_async(ctx, Tensor::zeros([n]));
            ctx.comm_sync();
            ctx.clock()
        });
        for c in &out {
            assert!((c - 2.0 * one).abs() < 1e-12, "{c} vs {}", 2.0 * one);
        }
    }

    #[test]
    fn async_matches_blocking_bitwise() {
        let run = |use_async: bool| {
            let world = World::new(system_i());
            world.run_on(4, |ctx| {
                let g = ctx.world_group(4);
                let t = Tensor::full([64], 0.3 + ctx.rank() as f32 * 1e-7);
                if use_async {
                    let r = g.all_reduce_async(ctx, t);
                    ctx.comm_sync();
                    r
                } else {
                    g.all_reduce(ctx, t)
                }
            })
        };
        let a = run(true);
        let b = run(false);
        assert_eq!(a[0].data(), b[0].data());
    }

    #[test]
    fn async_reduce_scatter_charges_comm_stream() {
        let world = World::new(system_ii());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let mine = g.reduce_scatter_async(ctx, Tensor::arange(16), 0);
            let launched = ctx.clock();
            ctx.comm_sync();
            (mine, launched, ctx.clock())
        });
        for (r, (mine, launched, clock)) in out.iter().enumerate() {
            assert_eq!(mine.numel(), 4);
            // sum of 4 identical arange(16) tensors, rank-r chunk
            assert_eq!(mine.data()[0], 4.0 * (4 * r) as f32);
            assert_eq!(*launched, 0.0);
            assert!(*clock > 0.0);
        }
    }

    #[test]
    fn hierarchical_trace_has_three_group_phases() {
        let world = World::new(system_iii());
        world.enable_tracing();
        world.force_allreduce_algo(Some(AllReduceAlgo::Hierarchical));
        world.run_on(8, |ctx| {
            let g = ctx.world_group(8);
            let _ = g.all_reduce(ctx, Tensor::zeros([1 << 16]));
        });
        let spans = world.trace();
        let group_spans: Vec<_> = spans
            .iter()
            .filter(|s| matches!(s.track, Track::Group(_)))
            .collect();
        assert_eq!(group_spans.len(), 3, "RS + leader AR + AG");
        let kinds: Vec<OpKind> = group_spans
            .iter()
            .map(|s| match &s.kind {
                SpanKind::Collective { kind, .. } => *kind,
                other => panic!("unexpected span {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![OpKind::ReduceScatter, OpKind::AllReduce, OpKind::AllGather]
        );
        // phases tile the op interval contiguously
        assert_eq!(group_spans[0].end, group_spans[1].start);
        assert_eq!(group_spans[1].end, group_spans[2].start);
        // device tracks still carry a single AllReduce span each
        let dev_spans = spans
            .iter()
            .filter(|s| matches!(s.track, Track::Device(_)))
            .count();
        assert_eq!(dev_spans, 8);
    }

    #[test]
    fn barrier_records_op_without_bytes() {
        let world = World::new(system_i());
        let clocks = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            g.barrier(ctx);
            ctx.clock()
        });
        let stats = world.stats();
        assert_eq!(stats.ops_of(OpKind::Barrier), 1);
        assert_eq!(stats.bytes, 0);
        // latency-bound, but not free
        for c in &clocks {
            assert!(*c > 0.0);
        }
    }
}
