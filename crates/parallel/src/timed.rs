//! A layer wrapper that charges modeled kernel time on the device's main
//! clock.
//!
//! The simulated tensor math is numerically real but free in virtual time;
//! experiments about compute/communication overlap need forward/backward to
//! *take* time so bucket collectives have something to hide behind. Wrap
//! each sub-layer in a [`TimedLayer`] and the staged backward sees one
//! compute span per layer, exactly like a kernel-per-layer execution.

use colossalai_autograd::{Layer, Param};
use colossalai_comm::DeviceCtx;
use colossalai_tensor::Tensor;

/// Charges a fixed virtual duration per forward / backward call around an
/// inner layer. Numerics pass through untouched.
pub struct TimedLayer<L: Layer> {
    ctx: DeviceCtx,
    inner: L,
    /// Seconds charged on each `forward`.
    pub forward_seconds: f64,
    /// Seconds charged on each `backward` (typically ~2x forward).
    pub backward_seconds: f64,
}

impl<L: Layer> TimedLayer<L> {
    pub fn new(ctx: &DeviceCtx, inner: L, forward_seconds: f64, backward_seconds: f64) -> Self {
        TimedLayer {
            ctx: ctx.clone(),
            inner,
            forward_seconds,
            backward_seconds,
        }
    }

    /// The wrapped layer.
    pub fn inner(&self) -> &L {
        &self.inner
    }
}

impl<L: Layer> Layer for TimedLayer<L> {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.ctx.charge_seconds(self.forward_seconds);
        self.inner.forward(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.ctx.charge_seconds(self.backward_seconds);
        self.inner.backward(dy)
    }

    // the default backward_staged (whole wrapper = one stage) is exactly
    // right: it calls our timed backward, then fires the stage with this
    // layer's now-final gradients

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.inner.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_autograd::{Linear, Sequential};
    use colossalai_comm::World;
    use colossalai_tensor::init;
    use colossalai_topology::systems::system_i;

    #[test]
    fn charges_main_clock_and_passes_numerics_through() {
        let world = World::new(system_i());
        world.run_on(1, |ctx| {
            let mut rng = init::rng(5);
            let mut plain = Linear::from_rng("l", 4, 3, true, &mut rng);
            let mut rng = init::rng(5);
            let mut timed =
                TimedLayer::new(ctx, Linear::from_rng("l", 4, 3, true, &mut rng), 1e-3, 2e-3);
            let x = init::uniform([2, 4], -1.0, 1.0, &mut init::rng(6));
            let y_plain = plain.forward(&x);
            let y_timed = timed.forward(&x);
            assert_eq!(y_plain.data(), y_timed.data());
            assert!((ctx.clock() - 1e-3).abs() < 1e-12);
            let d_plain = plain.backward(&Tensor::ones([2, 3]));
            let d_timed = timed.backward(&Tensor::ones([2, 3]));
            assert_eq!(d_plain.data(), d_timed.data());
            assert!((ctx.clock() - 3e-3).abs() < 1e-12);
        });
    }

    #[test]
    fn staged_backward_charges_per_layer() {
        let world = World::new(system_i());
        world.run_on(1, |ctx| {
            let mut rng = init::rng(8);
            let mut seq = Sequential::new(vec![
                Box::new(TimedLayer::new(
                    ctx,
                    Linear::from_rng("a", 4, 4, true, &mut rng),
                    1e-3,
                    2e-3,
                )) as Box<dyn Layer>,
                Box::new(TimedLayer::new(
                    ctx,
                    Linear::from_rng("b", 4, 2, true, &mut rng),
                    1e-3,
                    2e-3,
                )),
            ]);
            let x = init::uniform([2, 4], -1.0, 1.0, &mut init::rng(9));
            let _ = seq.forward(&x);
            let mut clocks = Vec::new();
            let _ = seq.backward_staged(&Tensor::ones([2, 2]), &mut |stage| {
                clocks.push((ctx.clock(), stage.len()));
            });
            // forward charged 2 ms; each staged backward charges 2 ms more
            assert_eq!(clocks.len(), 2);
            assert!((clocks[0].0 - 4e-3).abs() < 1e-12);
            assert!((clocks[1].0 - 6e-3).abs() < 1e-12);
            assert_eq!(clocks[0].1, 2);
        });
    }
}
