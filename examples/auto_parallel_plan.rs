//! The experimental automatic-parallelization planner (Section 3.3):
//! greedy sharding-conversion search plus checkpoint-aware strategy
//! planning for a GPT-2-sized model under shrinking memory budgets.
//!
//! Run with: `cargo run --release --example auto_parallel_plan`

use colossalai::models::TransformerConfig;
use colossalai::parallel::auto::{conversion_path, plan_strategies, LayerProfile, ShardSpec};

fn main() {
    // 1. sharding-spec conversion: the planner finds minimal collective
    //    paths instead of a hardcoded table (the Alpa limitation the paper
    //    calls out)
    println!("== sharding-spec conversion paths (1M-element tensor, 8 devices) ==");
    let n = 1 << 20;
    for (from, to) in [
        (ShardSpec::Shard(0), ShardSpec::Shard(1)),
        (ShardSpec::Partial, ShardSpec::Shard(0)),
        (ShardSpec::Partial, ShardSpec::Replicated),
        (ShardSpec::Replicated, ShardSpec::Shard(1)),
    ] {
        let (ops, cost) = conversion_path(from, to, n, 8);
        println!("{from:?} -> {to:?}: {ops:?} ({cost} element-hops)");
    }

    // 2. checkpoint-aware strategy search on a GPT-2-10B layer stack
    let cfg = TransformerConfig::gpt2_10b();
    let batch = 4;
    let layers: Vec<LayerProfile> = (0..cfg.layers)
        .map(|_| LayerProfile {
            flops: 2 * cfg.params_per_layer() * (batch * cfg.max_seq) as u64,
            act_bytes: cfg.activation_bytes_per_layer(batch, cfg.max_seq),
            weight_bytes: 2 * cfg.params_per_layer(),
            input_spec: ShardSpec::Shard(0),
            output_spec: ShardSpec::Shard(0),
        })
        .collect();

    println!("\n== checkpoint-aware plans for GPT-2 10B (batch 4, 8 devices) ==");
    println!(
        "{:>14} {:>12} {:>14} {:>12}",
        "budget", "checkpointed", "memory", "cost units"
    );
    for budget_gib in [80u64, 20, 10, 5, 2] {
        let budget = budget_gib << 30;
        match plan_strategies(&layers, 8, budget) {
            Some(plan) => {
                let ck = plan.choices.iter().filter(|c| c.checkpoint).count();
                println!(
                    "{:>11} GiB {:>9}/{:<2} {:>11.2} GiB {:>12}",
                    budget_gib,
                    ck,
                    layers.len(),
                    plan.memory_bytes as f64 / (1u64 << 30) as f64,
                    plan.total_cost
                );
            }
            None => println!("{budget_gib:>11} GiB   does not fit even fully checkpointed"),
        }
    }
    println!(
        "\ntighter budgets monotonically checkpoint more layers and pay more \
         recompute — the search the paper folds into its auto-parallel pass."
    );
}
