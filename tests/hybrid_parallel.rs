//! Integration: hybrid parallelism — combinations of data, tensor and
//! pipeline parallelism spanning every crate, checked against serial
//! training ("free combination of these techniques", Section 1).

use colossalai::comm::World;
use colossalai::core::{ParallelAxis, ParallelContext};
use colossalai::models::data::SyntheticVision;
use colossalai::models::TransformerConfig;
use colossalai::parallel::data_parallel::flatten_params;
use colossalai::parallel::vit1d::VisionTransformer1d;
use colossalai::tensor::init;
use colossalai::tensor::ops::cross_entropy;
use colossalai::topology::systems::system_i;
use colossalai_autograd::Layer;

const LR: f32 = 0.05;

fn serial_losses(
    cfg: &TransformerConfig,
    patch_dim: usize,
    data: &SyntheticVision,
    batch: usize,
    steps: usize,
) -> Vec<f32> {
    let mut rng = init::rng(31337);
    let mut vit = colossalai::models::VisionTransformer::new(cfg, patch_dim, &mut rng);
    let mut losses = Vec::new();
    for step in 0..steps {
        let (x, t) = data.batch(batch, step as u64);
        vit.zero_grad();
        let logits = vit.forward(&x);
        let (loss, d) = cross_entropy(&logits, &t);
        losses.push(loss);
        let _ = vit.backward(&d);
        vit.visit_params(&mut |p| {
            let g = p.grad().clone();
            p.value_mut().axpy(-LR, &g);
        });
    }
    losses
}

#[test]
fn dp_times_tp_matches_serial() {
    // 4 devices = 2 data-parallel replicas x 2-way tensor parallelism
    let cfg = TransformerConfig {
        layers: 2,
        hidden: 8,
        heads: 2,
        mlp_ratio: 2,
        vocab: 4,
        max_seq: 4,
    };
    let patch_dim = 6;
    let batch = 8;
    let steps = 4;
    let data = SyntheticVision::new(cfg.max_seq, patch_dim, cfg.vocab, 777);
    let want = serial_losses(&cfg, patch_dim, &data, batch, steps);

    let config = colossalai::core::Config::from_json(
        r#"{ "parallel": { "tensor": { "size": 2, "mode": "1d" }, "data": 2 } }"#,
    )
    .unwrap();

    let world = World::new(system_i());
    let results = world.run_on(4, |ctx| {
        let pctx = ParallelContext::new(&config, ctx.rank(), 4);
        let tp_members = pctx.group_members(ParallelAxis::Tensor);
        let dp_members = pctx.group_members(ParallelAxis::Data);
        let tp_group = ctx.group(&tp_members);
        let dp_group = ctx.group(&dp_members);

        let mut rng = init::rng(31337);
        let mut vit = VisionTransformer1d::new(ctx, &tp_group, &cfg, patch_dim, &mut rng);
        let dp_rank = pctx.axis_rank(ParallelAxis::Data);
        let dp = pctx.degree(ParallelAxis::Data);
        let mut losses = Vec::new();
        for step in 0..steps {
            let (x, t) = data.batch(batch, step as u64);
            // each DP replica takes its slice of the global batch
            let x_local = x.chunk(0, dp).swap_remove(dp_rank);
            let t_local = t[dp_rank * (batch / dp)..(dp_rank + 1) * (batch / dp)].to_vec();
            vit.zero_grad();
            let logits = vit.forward(&x_local);
            let (local_loss, d) = cross_entropy(&logits, &t_local);
            let _ = vit.backward(&d);
            // data-parallel gradient mean across replicas
            let dp2 = dp_group.clone();
            let cloned_ctx = ctx.clone();
            vit.visit_params(&mut |p| {
                let mut red = dp2.all_reduce(&cloned_ctx, p.grad().clone());
                red.scale(1.0 / dp as f32);
                *p.grad_mut() = red;
            });
            vit.visit_params(&mut |p| {
                let g = p.grad().clone();
                p.value_mut().axpy(-LR, &g);
            });
            // average the local losses for reporting parity with serial
            let loss_sum = dp_group
                .all_reduce(ctx, colossalai::tensor::Tensor::scalar(local_loss))
                .item();
            losses.push(loss_sum / dp as f32);
        }
        (losses, flatten_params(&mut vit))
    });

    for (got, want) in results[0].0.iter().zip(&want) {
        assert!(
            (got - want).abs() < 1e-3,
            "hybrid loss {got} vs serial {want}"
        );
    }
    // replicas with the same tensor rank hold identical shards
    assert_eq!(results[0].1.data(), results[2].1.data());
    assert_eq!(results[1].1.data(), results[3].1.data());
}

#[test]
fn config_zoo_engine_compose_end_to_end() {
    // the whole Listing-1 stack with tensor parallelism: JSON config ->
    // model zoo -> engine -> trainer, on 2 TP ranks
    use colossalai::core::{build_vit, initialize, Config, OptimizerSpec, Trainer};
    use colossalai::models::TransformerConfig;

    let model_cfg = TransformerConfig {
        layers: 1,
        hidden: 8,
        heads: 2,
        mlp_ratio: 2,
        vocab: 4,
        max_seq: 4,
    };
    let data = SyntheticVision::new(4, 6, 4, 99);
    let world = World::new(system_i());
    let losses = world.run_on(2, |ctx| {
        let config = Config::from_json(
            r#"{ "parallel": { "tensor": { "size": 2, "mode": "1d" } }, "grad_clip": 1.0 }"#,
        )
        .unwrap();
        let model = build_vit(ctx, &config, 2, &model_cfg, 6, 1717);
        let engine = initialize(
            ctx,
            &config,
            2,
            model,
            OptimizerSpec::AdamW {
                lr: 0.02,
                weight_decay: 0.0,
            },
        );
        let mut trainer = Trainer::new(engine);
        trainer.fit(12, |step| data.batch(4, step))
    });
    // both TP ranks compute identical losses (replicated data, sharded math)
    assert_eq!(losses[0], losses[1]);
    assert!(
        losses[0].last().unwrap() < &(losses[0][0] * 0.9),
        "config-driven TP training must converge: {:?}",
        losses[0]
    );
}

#[test]
fn parallel_context_places_tensor_groups_on_fast_links() {
    // on System II the tensor group (innermost) must land on NVLink pairs
    let config = colossalai::core::Config::from_json(
        r#"{ "parallel": { "tensor": { "size": 2, "mode": "1d" } } }"#,
    )
    .unwrap();
    let cluster = colossalai::topology::systems::system_ii();
    for rank in 0..8 {
        let pctx = ParallelContext::new(&config, rank, 8);
        let tp = pctx.group_members(ParallelAxis::Tensor);
        assert!(
            cluster.fully_nvlinked(&tp),
            "tensor group {tp:?} should ride NVLink on System II"
        );
    }
}
