//! Sequence parallelism (Li et al., Section 2.3): the model is replicated,
//! the *sequence* dimension of the input is split across devices, and
//! self-attention is computed with Ring Self-Attention — partial key/value
//! blocks circulate around the ring so every rank attends over the full
//! sequence while only ever owning `s/p` of every activation.
//!
//! Communication equivalence note: circulating K (and V) around the ring
//! for `p-1` steps moves exactly the traffic of a ring all-gather, and
//! returning the dK/dV contributions moves that of a ring reduce-scatter.
//! We implement the exchange with those collectives — same volume, same
//! ring bottleneck, substantially less bookkeeping.

use colossalai_autograd::{Layer, Linear, Param};
use colossalai_comm::{DeviceCtx, Group};
use colossalai_tensor::ops::{softmax, softmax_backward};
use colossalai_tensor::{bmm, bmm_at, bmm_bt, Tensor};

/// Splits a `[b, s, ..]` tensor along the sequence dimension for `rank` of
/// `p` (test/data-loader helper).
pub fn split_sequence(x: &Tensor, p: usize, rank: usize) -> Tensor {
    x.chunk(1, p).swap_remove(rank)
}

/// Ring Self-Attention: multi-head attention over a sequence-sharded input
/// `[b, s/p, d]`, with Q/K/V/O projections replicated across ranks.
pub struct RingSelfAttention {
    ctx: DeviceCtx,
    group: Group,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    cache: Option<RingCache>,
}

struct RingCache {
    q: Tensor,      // [b*h, s/p, dk]
    k_full: Tensor, // [b*h, s, dk]
    v_full: Tensor, // [b*h, s, dk]
    attn: Tensor,   // [b*h, s/p, s]
}

impl RingSelfAttention {
    #[allow(clippy::too_many_arguments)]
    pub fn from_global(
        ctx: &DeviceCtx,
        group: &Group,
        name: &str,
        heads: usize,
        wq: (&Tensor, &Tensor),
        wk: (&Tensor, &Tensor),
        wv: (&Tensor, &Tensor),
        wo: (&Tensor, &Tensor),
    ) -> Self {
        let mk =
            |n: &str, (w, b): (&Tensor, &Tensor)| Linear::from_parts(n, w.clone(), Some(b.clone()));
        RingSelfAttention {
            ctx: ctx.clone(),
            group: group.clone(),
            wq: mk(&format!("{name}.q"), wq),
            wk: mk(&format!("{name}.k"), wk),
            wv: mk(&format!("{name}.v"), wv),
            wo: mk(&format!("{name}.o"), wo),
            heads,
            cache: None,
        }
    }

    /// Unlike 1D tensor parallelism, *any* number of ranks works — heads are
    /// not divided, the sequence is. (The Fig 12/13 advantage on 8 GPUs.)
    pub fn heads(&self) -> usize {
        self.heads
    }
}

impl Layer for RingSelfAttention {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 3, "ring attention input must be [b, s/p, d]");
        let heads = self.heads;
        use colossalai_autograd::attention::{merge_heads, split_heads};
        let q = split_heads(&self.wq.forward(x), heads); // [b*h, s/p, dk]
        let k_local = split_heads(&self.wk.forward(x), heads);
        let v_local = split_heads(&self.wv.forward(x), heads);
        let dk = q.dims()[2];
        let scale = 1.0 / (dk as f32).sqrt();

        // ring-circulate K and V blocks (= ring all-gather along sequence)
        let k_full = self.group.all_gather_cat(&self.ctx, k_local, 1);
        let v_full = self.group.all_gather_cat(&self.ctx, v_local, 1);

        let mut scores = bmm_bt(&q, &k_full); // [b*h, s/p, s]
        scores.scale(scale);
        let attn = softmax(&scores);
        let z = bmm(&attn, &v_full); // [b*h, s/p, dk]
        let out = self.wo.forward(&merge_heads(&z, heads));
        self.cache = Some(RingCache {
            q,
            k_full,
            v_full,
            attn,
        });
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        use colossalai_autograd::attention::{merge_heads, split_heads};
        let RingCache {
            q,
            k_full,
            v_full,
            attn,
        } = self.cache.take().expect("backward before forward");
        let heads = self.heads;
        let dk = q.dims()[2];
        let scale = 1.0 / (dk as f32).sqrt();

        let dz = split_heads(&self.wo.backward(dy), heads);
        let dattn = bmm_bt(&dz, &v_full); // [b*h, s/p, s]
        let dv_full = bmm_at(&attn, &dz); // [b*h, s, dk]
        let mut dscores = softmax_backward(&attn, &dattn);
        dscores.scale(scale);
        let dq = bmm(&dscores, &k_full); // [b*h, s/p, dk]
        let dk_full = bmm_at(&dscores, &q); // [b*h, s, dk]

        // contributions to remote K/V blocks ride the ring back
        // (= ring reduce-scatter along sequence)
        let dk_local = self.group.reduce_scatter(&self.ctx, dk_full, 1);
        let dv_local = self.group.reduce_scatter(&self.ctx, dv_full, 1);

        let dx_q = self.wq.backward(&merge_heads(&dq, heads));
        let dx_k = self.wk.backward(&merge_heads(&dk_local, heads));
        let dx_v = self.wv.backward(&merge_heads(&dv_local, heads));
        dx_q.zip(&dx_k, |a, b| a + b).zip(&dx_v, |a, b| a + b)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_autograd::MultiHeadAttention;
    use colossalai_comm::{OpKind, World};
    use colossalai_tensor::init;
    use colossalai_topology::systems::system_iii;

    fn weights(d: usize, seed: u64) -> (Tensor, Tensor) {
        let mut rng = init::rng(seed);
        (
            init::lecun_normal(d, d, &mut rng),
            init::uniform([d], -0.1, 0.1, &mut rng),
        )
    }

    fn run_case(p: usize, b: usize, s: usize, d: usize, heads: usize, seed: u64) {
        let (wq, bq) = weights(d, seed);
        let (wk, bk) = weights(d, seed + 1);
        let (wv, bv) = weights(d, seed + 2);
        let (wo, bo) = weights(d, seed + 3);
        let mut rng = init::rng(seed + 4);
        let x = init::uniform([b, s, d], -1.0, 1.0, &mut rng);
        let dy = init::uniform([b, s, d], -1.0, 1.0, &mut rng);

        let mut serial = MultiHeadAttention::from_parts(
            Linear::from_parts("q", wq.clone(), Some(bq.clone())),
            Linear::from_parts("k", wk.clone(), Some(bk.clone())),
            Linear::from_parts("v", wv.clone(), Some(bv.clone())),
            Linear::from_parts("o", wo.clone(), Some(bo.clone())),
            heads,
            false,
        );
        let y_want = serial.forward(&x);
        let dx_want = serial.backward(&dy);

        let world = World::new(system_iii());
        let results = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut rsa = RingSelfAttention::from_global(
                ctx,
                &g,
                "rsa",
                heads,
                (&wq, &bq),
                (&wk, &bk),
                (&wv, &bv),
                (&wo, &bo),
            );
            let x_local = split_sequence(&x, p, g.rank());
            let dy_local = split_sequence(&dy, p, g.rank());
            let y = rsa.forward(&x_local);
            let dx = rsa.backward(&dy_local);
            (y, dx)
        });
        let y_got = Tensor::cat(
            &results.iter().map(|(y, _)| y.clone()).collect::<Vec<_>>(),
            1,
        );
        let dx_got = Tensor::cat(
            &results.iter().map(|(_, dx)| dx.clone()).collect::<Vec<_>>(),
            1,
        );
        assert!(
            y_got.allclose(&y_want, 2e-4),
            "p={p}: fwd diff {}",
            y_got.max_abs_diff(&y_want)
        );
        assert!(
            dx_got.allclose(&dx_want, 2e-4),
            "p={p}: dx diff {}",
            dx_got.max_abs_diff(&dx_want)
        );
    }

    #[test]
    fn ring_attention_matches_serial_p2() {
        run_case(2, 2, 8, 8, 2, 500);
    }

    #[test]
    fn ring_attention_matches_serial_p4() {
        run_case(4, 1, 8, 8, 4, 501);
    }

    #[test]
    fn works_when_heads_not_divisible_by_ranks() {
        // the key flexibility vs 1D TP: 3 heads on 4 ranks is fine because
        // the *sequence* is split, not the heads
        run_case(4, 1, 8, 6, 3, 502);
    }

    #[test]
    fn weight_grads_match_serial_after_allreduce() {
        // model is replicated; like data parallelism, summing (all-reducing)
        // per-rank weight grads must equal the serial gradient
        let (p, b, s, d, heads) = (2usize, 1usize, 4usize, 4usize, 2usize);
        let (wq, bq) = weights(d, 510);
        let (wk, bk) = weights(d, 511);
        let (wv, bv) = weights(d, 512);
        let (wo, bo) = weights(d, 513);
        let mut rng = init::rng(514);
        let x = init::uniform([b, s, d], -1.0, 1.0, &mut rng);
        let dy = init::uniform([b, s, d], -1.0, 1.0, &mut rng);

        let mut serial = MultiHeadAttention::from_parts(
            Linear::from_parts("q", wq.clone(), Some(bq.clone())),
            Linear::from_parts("k", wk.clone(), Some(bk.clone())),
            Linear::from_parts("v", wv.clone(), Some(bv.clone())),
            Linear::from_parts("o", wo.clone(), Some(bo.clone())),
            heads,
            false,
        );
        let _ = serial.forward(&x);
        let _ = serial.backward(&dy);
        let mut want = Vec::new();
        serial.visit_params(&mut |p| want.push(p.grad().clone()));

        let world = World::new(system_iii());
        let results = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut rsa = RingSelfAttention::from_global(
                ctx,
                &g,
                "rsa",
                heads,
                (&wq, &bq),
                (&wk, &bk),
                (&wv, &bv),
                (&wo, &bo),
            );
            let _ = rsa.forward(&split_sequence(&x, p, g.rank()));
            let _ = rsa.backward(&split_sequence(&dy, p, g.rank()));
            let mut grads = Vec::new();
            rsa.visit_params(&mut |p| grads.push(p.grad().clone()));
            grads
        });
        for (i, want_g) in want.iter().enumerate() {
            let mut sum = results[0][i].clone();
            for r in &results[1..] {
                sum.axpy(1.0, &r[i]);
            }
            assert!(
                sum.allclose(want_g, 2e-4),
                "grad {i} diff {}",
                sum.max_abs_diff(want_g)
            );
        }
    }

    #[test]
    fn ring_traffic_is_gather_plus_scatter() {
        let (p, b, s, d, heads) = (4usize, 1usize, 8usize, 8usize, 2usize);
        let (wq, bq) = weights(d, 520);
        let mut rng = init::rng(521);
        let x = init::uniform([b, s, d], -1.0, 1.0, &mut rng);
        let world = World::new(system_iii());
        world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut rsa = RingSelfAttention::from_global(
                ctx,
                &g,
                "rsa",
                heads,
                (&wq, &bq),
                (&wq, &bq),
                (&wq, &bq),
                (&wq, &bq),
            );
            let x_local = split_sequence(&x, p, g.rank());
            let y = rsa.forward(&x_local);
            let _ = rsa.backward(&y);
        });
        let stats = world.stats();
        // forward: 2 all-gathers (K and V); backward: 2 reduce-scatters
        assert_eq!(stats.ops_of(OpKind::AllGather), 2);
        assert_eq!(stats.ops_of(OpKind::ReduceScatter), 2);
        // K block per rank: b*h * s/p * dk = 1*2*2*4 = 16 elements;
        // all-gather hops = (p-1) * p * 16
        let block = (b * heads) as u64 * (s / p) as u64 * (d / heads) as u64;
        assert_eq!(
            stats.elements_of(OpKind::AllGather),
            2 * (p as u64 - 1) * p as u64 * block
        );
    }
}
