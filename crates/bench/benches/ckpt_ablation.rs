//! Criterion bench + ablation: activation checkpointing — the extra
//! recompute it costs (wall time) and the activation memory it saves
//! (modeled), the trade Colossal-AI's search integrates (Section 3.3).

use colossalai_autograd::{Checkpoint, Layer, Sequential};
use colossalai_models::{TransformerBlock, TransformerConfig};
use colossalai_tensor::init;
use colossalai_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};

fn make_blocks(n: usize, dim: usize, heads: usize) -> Sequential {
    let mut rng = init::rng(5);
    Sequential::new(
        (0..n)
            .map(|i| {
                Box::new(TransformerBlock::new(
                    &format!("b{i}"),
                    dim,
                    heads,
                    2,
                    false,
                    &mut rng,
                )) as Box<dyn Layer>
            })
            .collect(),
    )
}

fn bench_ckpt(c: &mut Criterion) {
    let mut group = c.benchmark_group("activation_checkpoint");
    group.sample_size(10);
    let (layers, dim, heads) = (2usize, 16usize, 4usize);
    let mut rng = init::rng(6);
    let x = init::uniform([2, 6, dim], -1.0, 1.0, &mut rng);
    let dy = init::uniform([2, 6, dim], -1.0, 1.0, &mut rng);

    group.bench_function("plain_fwd_bwd", |b| {
        let mut m = make_blocks(layers, dim, heads);
        b.iter(|| {
            let y = m.forward(&x);
            std::hint::black_box(m.backward(&dy));
            std::hint::black_box(y);
        });
    });

    group.bench_function("checkpointed_fwd_bwd", |b| {
        let mut m = Checkpoint::new(make_blocks(layers, dim, heads));
        b.iter(|| {
            let y = m.forward(&x);
            std::hint::black_box(m.backward(&dy));
            std::hint::black_box(y);
        });
    });
    group.finish();

    // modeled memory ablation at paper scale
    println!("\n== checkpointing ablation: BERT-Base activation memory per device ==");
    let cfg = TransformerConfig::bert_base();
    let (batch, seq) = (32usize, 512usize);
    let plain = cfg.activation_bytes(batch, seq);
    let ckpt = cfg.layers as u64
        * colossalai_autograd::checkpoint::checkpointed_activation_bytes(
            (batch * seq * cfg.hidden) as u64,
        )
        + cfg.activation_bytes_per_layer(batch, seq);
    println!(
        "plain: {:.2} GiB | checkpointed: {:.2} GiB ({:.1}x less) at +1 forward of compute",
        plain as f64 / (1u64 << 30) as f64,
        ckpt as f64 / (1u64 << 30) as f64,
        plain as f64 / ckpt as f64
    );
    let _ = Tensor::zeros([1]);
}

criterion_group!(benches, bench_ckpt);
criterion_main!(benches);
