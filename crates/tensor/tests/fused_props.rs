//! Bitwise-equivalence properties for the fused/in-place kernels: every
//! fused path must produce *exactly* the bits of its composed counterpart
//! (same per-element arithmetic in the same order), on random shapes
//! including ragged rows that exercise the vectorized kernels' scalar
//! tails.

use colossalai_tensor::ops::{
    add_bias_gelu, add_bias_gelu_backward, gelu, gelu_grad, layernorm, layernorm_fused, softmax,
    softmax_backward, sum_axis, sum_axis0_acc,
};
use colossalai_tensor::{axpy_slices, init, matmul_at, matmul_at_acc, scale_slice, Tensor};
use proptest::prelude::*;

fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = init::rng(seed);
    init::uniform([rows, cols], -2.0, 2.0, &mut rng)
}

fn row(cols: usize, seed: u64) -> Tensor {
    let mut rng = init::rng(seed);
    init::uniform([cols], -1.0, 1.0, &mut rng)
}

#[test]
fn matmul_at_acc_deep_k_falls_back_bitwise() {
    // k > KC (512): a single k-block no longer covers the reduction, so the
    // fused path must take the composed fallback — still bitwise-identical.
    let (k, m, n) = (600, 3, 5);
    let a = tensor(k, m, 42);
    let b = tensor(k, n, 43);
    let g0 = tensor(m, n, 44);
    let mut composed = g0.clone();
    composed.axpy(1.0, &matmul_at(&a, &b));
    let mut fused = g0;
    matmul_at_acc(&a, &b, &mut fused);
    assert_eq!(fused.data(), composed.data());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn add_bias_gelu_matches_composed(rows in 1usize..8, cols in 1usize..20, seed in 0u64..1000) {
        let x = tensor(rows, cols, seed);
        let bias = row(cols, seed + 1);
        let composed_h = x.add_bias(&bias);
        let composed_y = gelu(&composed_h);
        let (h, y) = add_bias_gelu(x.clone(), &bias);
        prop_assert_eq!(h.data(), composed_h.data());
        prop_assert_eq!(y.data(), composed_y.data());
        // backward identity: dh = gelu'(h) * dy
        let dy = tensor(rows, cols, seed + 2);
        let fused_dh = add_bias_gelu_backward(&h, &dy);
        let composed_dh = gelu_grad(&composed_h).zip(&dy, |g, d| g * d);
        prop_assert_eq!(fused_dh.data(), composed_dh.data());
    }

    #[test]
    fn layernorm_fused_matches_composed(rows in 1usize..8, cols in 1usize..20, seed in 0u64..1000) {
        let x = tensor(rows, cols, seed);
        let gamma = row(cols, seed + 1);
        let beta = row(cols, seed + 2);
        let (y0, m0, s0) = layernorm(&x, &gamma, &beta, 1e-5);
        let (y1, m1, s1) = layernorm_fused(&x, &gamma, &beta, 1e-5);
        prop_assert_eq!(y1.data(), y0.data());
        prop_assert_eq!(m1, m0);
        prop_assert_eq!(s1, s0);
    }

    #[test]
    fn softmax_inplace_matches_reference(rows in 1usize..6, cols in 1usize..16, seed in 0u64..1000) {
        let x = tensor(rows, cols, seed);
        // independent composed reference (max, exp, sum, divide)
        let mut want = x.data().to_vec();
        for r in want.chunks_mut(cols) {
            let m = r.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in r.iter_mut() {
                *v = (*v - m).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in r.iter_mut() {
                *v *= inv;
            }
        }
        let y = softmax(&x);
        prop_assert_eq!(y.data(), &want[..]);
        // in-place backward == composed reference
        let dy = tensor(rows, cols, seed + 3);
        let dx = softmax_backward(&y, &dy);
        let mut want_dx = dy.data().to_vec();
        for (d_row, y_row) in want_dx.chunks_mut(cols).zip(y.data().chunks(cols)) {
            let s: f32 = d_row.iter().zip(y_row.iter()).map(|(&d, &v)| d * v).sum();
            for (d, &v) in d_row.iter_mut().zip(y_row.iter()) {
                *d = v * (*d - s);
            }
        }
        prop_assert_eq!(dx.data(), &want_dx[..]);
    }

    #[test]
    fn matmul_at_acc_matches_composed(
        k in 1usize..40, m in 1usize..24, n in 1usize..24, seed in 0u64..1000
    ) {
        // a: [k, m], b: [k, n], grad: [m, n] with live (nonzero) contents —
        // the fused in-place accumulation must reproduce the composed
        // temp-then-axpy path bit for bit. The ranges cross the kernel's
        // small-GEMM cutoff so both dispatch arms are exercised.
        let a = tensor(k, m, seed);
        let b = tensor(k, n, seed + 1);
        let g0 = tensor(m, n, seed + 2);
        let mut composed = g0.clone();
        composed.axpy(1.0, &matmul_at(&a, &b));
        let mut fused = g0;
        matmul_at_acc(&a, &b, &mut fused);
        prop_assert_eq!(fused.data(), composed.data());
    }

    #[test]
    fn sum_axis0_acc_matches_composed(
        rows in 1usize..20, n in 1usize..24, seed in 0u64..1000
    ) {
        let x = tensor(rows, n, seed);
        let g0 = row(n, seed + 1);
        let mut composed = g0.clone();
        composed.axpy(1.0, &sum_axis(&x, 0));
        let mut fused = g0;
        sum_axis0_acc(&x, &mut fused);
        prop_assert_eq!(fused.data(), composed.data());
    }

    #[test]
    fn chunked_axpy_and_scale_match_scalar_loops(
        n in 1usize..300, alpha in -2.0f32..2.0, s in -2.0f32..2.0, seed in 0u64..1000
    ) {
        let mut rng = init::rng(seed);
        let src = init::uniform([n], -1.0, 1.0, &mut rng);
        let dst0 = init::uniform([n], -1.0, 1.0, &mut rng);
        let mut want = dst0.data().to_vec();
        for (a, &b) in want.iter_mut().zip(src.data().iter()) {
            *a += alpha * b;
        }
        let mut got = dst0.data().to_vec();
        axpy_slices(&mut got, alpha, src.data());
        prop_assert_eq!(&got[..], &want[..]);
        let mut want2 = got.clone();
        for v in want2.iter_mut() {
            *v *= s;
        }
        scale_slice(&mut got, s);
        prop_assert_eq!(&got[..], &want2[..]);
    }
}
