//! Token/patch embedding layers.

use crate::layer::Layer;
use crate::param::Param;
use colossalai_tensor::init::InitRng;
use colossalai_tensor::{init, Tensor};

/// Lookup-table embedding: input holds integer indices (as `f32` values,
/// the tensor crate's single dtype), output is `[.., dim]`.
pub struct Embedding {
    table: Param,
    cached_indices: Option<Vec<usize>>,
}

impl Embedding {
    pub fn new(name: &str, vocab: usize, dim: usize, rng: &mut InitRng) -> Self {
        Embedding {
            table: Param::new(
                format!("{name}.table"),
                init::normal([vocab, dim], 0.0, 0.02, rng),
            ),
            cached_indices: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.value().dims()[0]
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.table.value().dims()[1]
    }
}

impl Layer for Embedding {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let dim = self.dim();
        let vocab = self.vocab();
        let indices: Vec<usize> = x
            .data()
            .iter()
            .map(|&v| {
                let i = v as usize;
                assert!(
                    v >= 0.0 && v.fract() == 0.0 && i < vocab,
                    "embedding index {v} invalid for vocab {vocab}"
                );
                i
            })
            .collect();
        let mut out = Vec::with_capacity(indices.len() * dim);
        for &i in &indices {
            out.extend_from_slice(&self.table.value().data()[i * dim..(i + 1) * dim]);
        }
        let mut dims = x.dims().to_vec();
        dims.push(dim);
        self.cached_indices = Some(indices);
        Tensor::from_vec(dims, out)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let indices = self.cached_indices.take().expect("backward before forward");
        let dim = self.dim();
        assert_eq!(
            dy.numel(),
            indices.len() * dim,
            "upstream gradient shape mismatch"
        );
        {
            let grad = self.table.grad_mut().data_mut();
            for (row, &i) in indices.iter().enumerate() {
                for d in 0..dim {
                    grad[i * dim + d] += dy.data()[row * dim + d];
                }
            }
        }
        // indices are not differentiable; return a zero gradient of the
        // input's shape for interface uniformity
        Tensor::zeros(dy.dims()[..dy.rank() - 1].to_vec())
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

/// Learned absolute position embedding added to a `[b, s, d]` input.
pub struct PositionEmbedding {
    table: Param,
}

impl PositionEmbedding {
    pub fn new(name: &str, max_len: usize, dim: usize, rng: &mut InitRng) -> Self {
        PositionEmbedding {
            table: Param::new(
                format!("{name}.pos"),
                init::normal([max_len, dim], 0.0, 0.02, rng),
            ),
        }
    }
}

impl Layer for PositionEmbedding {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 3, "position embedding expects [b, s, d]");
        let (b, s, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        assert!(
            s <= self.table.value().dims()[0],
            "sequence longer than max_len"
        );
        assert_eq!(d, self.table.value().dims()[1], "dim mismatch");
        let mut out = x.clone();
        for bi in 0..b {
            for si in 0..s {
                let base = (bi * s + si) * d;
                for di in 0..d {
                    out.data_mut()[base + di] += self.table.value().data()[si * d + di];
                }
            }
        }
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (b, s, d) = (dy.dims()[0], dy.dims()[1], dy.dims()[2]);
        {
            let grad = self.table.grad_mut().data_mut();
            for bi in 0..b {
                for si in 0..s {
                    let base = (bi * s + si) * d;
                    for di in 0..d {
                        grad[si * d + di] += dy.data()[base + di];
                    }
                }
            }
        }
        dy.clone()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_rows() {
        let mut rng = init::rng(30);
        let mut e = Embedding::new("emb", 10, 4, &mut rng);
        let x = Tensor::from_vec([2, 2], vec![0.0, 3.0, 9.0, 3.0]);
        let y = e.forward(&x);
        assert_eq!(y.dims(), &[2, 2, 4]);
        // rows with the same index are identical
        for d in 0..4 {
            assert_eq!(y.at(&[0, 1, d]), y.at(&[1, 1, d]));
        }
    }

    #[test]
    fn backward_scatters_gradient() {
        let mut rng = init::rng(31);
        let mut e = Embedding::new("emb", 5, 2, &mut rng);
        let x = Tensor::from_vec([3], vec![1.0, 1.0, 4.0]);
        let _ = e.forward(&x);
        let dy = Tensor::from_vec([3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let _ = e.backward(&dy);
        let g = e.table.grad();
        // index 1 hit twice
        assert_eq!(g.at(&[1, 0]), 4.0);
        assert_eq!(g.at(&[1, 1]), 6.0);
        assert_eq!(g.at(&[4, 0]), 5.0);
        assert_eq!(g.at(&[0, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid for vocab")]
    fn out_of_vocab_rejected() {
        let mut rng = init::rng(32);
        let mut e = Embedding::new("emb", 5, 2, &mut rng);
        let _ = e.forward(&Tensor::from_vec([1], vec![5.0]));
    }

    #[test]
    fn position_embedding_adds_per_position() {
        let mut rng = init::rng(33);
        let mut p = PositionEmbedding::new("pos", 8, 3, &mut rng);
        let x = Tensor::zeros([2, 4, 3]);
        let y = p.forward(&x);
        // both batch rows got the same position vector
        for s in 0..4 {
            for d in 0..3 {
                assert_eq!(y.at(&[0, s, d]), y.at(&[1, s, d]));
            }
        }
        let _ = p.backward(&Tensor::ones([2, 4, 3]));
        // each position row accumulated b=2
        assert_eq!(p.table.grad().at(&[0, 0]), 2.0);
        assert_eq!(p.table.grad().at(&[3, 2]), 2.0);
        assert_eq!(p.table.grad().at(&[4, 0]), 0.0);
    }
}
