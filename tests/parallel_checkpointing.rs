//! Integration: checkpointing *parallel* training — each tensor-parallel
//! rank saves its shard StateDict; a fresh world restores them and resumes
//! on the identical trajectory (the save/resume workflow of a real
//! distributed training system).

use colossalai::comm::World;
use colossalai::models::TransformerConfig;
use colossalai::parallel::data_parallel::flatten_params;
use colossalai::parallel::vit1d::VisionTransformer1d;
use colossalai::tensor::init;
use colossalai::tensor::ops::cross_entropy;
use colossalai::topology::systems::system_i;
use colossalai_autograd::{Layer, StateDict};

const P: usize = 2;
const LR: f32 = 0.05;

fn cfg() -> TransformerConfig {
    TransformerConfig {
        layers: 1,
        hidden: 8,
        heads: 2,
        mlp_ratio: 2,
        vocab: 4,
        max_seq: 4,
    }
}

fn train_steps(vit: &mut VisionTransformer1d, x: &colossalai::tensor::Tensor, steps: usize) {
    for _ in 0..steps {
        vit.zero_grad();
        let logits = vit.forward(x);
        let (_, d) = cross_entropy(&logits, &[0, 2]);
        let _ = vit.backward(&d);
        vit.visit_params(&mut |p| {
            let g = p.grad().clone();
            p.value_mut().axpy(-LR, &g);
        });
    }
}

#[test]
fn sharded_checkpoints_resume_the_exact_trajectory() {
    let model_cfg = cfg();
    let mut rng = init::rng(42);
    let x = init::uniform([2, 4, 6], -1.0, 1.0, &mut rng);

    // phase 1: train 2 steps, checkpoint each rank's shard, train 2 more;
    // record the final parameters
    let world = World::new(system_i());
    let x1 = x.clone();
    let phase1 = world.run_on(P, |ctx| {
        let g = ctx.world_group(P);
        let mut rng = init::rng(2024);
        let mut vit = VisionTransformer1d::new(ctx, &g, &model_cfg, 6, &mut rng);
        train_steps(&mut vit, &x1, 2);
        let shard_bytes = StateDict::capture(&mut vit).to_bytes();
        train_steps(&mut vit, &x1, 2);
        (shard_bytes, flatten_params(&mut vit).into_vec())
    });

    // phase 2: a *fresh world* (simulating a restart) restores each rank's
    // shard and replays the last 2 steps — parameters must match exactly
    let world2 = World::new(system_i());
    let checkpoints: Vec<Vec<u8>> = phase1.iter().map(|(b, _)| b.clone()).collect();
    let x2 = x.clone();
    let resumed = world2.run_on(P, |ctx| {
        let g = ctx.world_group(P);
        // different init seed: everything must come from the checkpoint
        let mut rng = init::rng(999);
        let mut vit = VisionTransformer1d::new(ctx, &g, &model_cfg, 6, &mut rng);
        let sd = StateDict::from_bytes(&checkpoints[ctx.rank()]).unwrap();
        sd.restore(&mut vit).unwrap();
        train_steps(&mut vit, &x2, 2);
        flatten_params(&mut vit).into_vec()
    });

    for (rank, ((_, want), got)) in phase1.iter().zip(&resumed).enumerate() {
        assert_eq!(want, got, "rank {rank} diverged after restore");
    }
}

#[test]
fn restoring_the_wrong_rank_shard_is_rejected_or_detected() {
    // shards have identical names and shapes across ranks, so restoring a
    // *different rank's* shard succeeds structurally but changes the math —
    // verify it actually produces different parameters (i.e. shards are not
    // interchangeable silently-equal data)
    let model_cfg = cfg();
    let world = World::new(system_i());
    let shards = world.run_on(P, |ctx| {
        let g = ctx.world_group(P);
        let mut rng = init::rng(7);
        let mut vit = VisionTransformer1d::new(ctx, &g, &model_cfg, 6, &mut rng);
        StateDict::capture(&mut vit).to_bytes()
    });
    assert_ne!(shards[0], shards[1], "rank shards must differ");
}
