//! Cross-crate bitwise serial-vs-pool parity for the ops the `tensor::par`
//! runtime accelerates outside the tensor crate: fused optimizer updates,
//! bucketed gradient flatten/write-back, and the rank-ordered reductions
//! inside `comm::Group` collectives.
//!
//! Same contract as `crates/tensor/tests/par_props.rs`: the pool may change
//! wall-clock, never bits. Budget/cutoff are process globals, so every test
//! holds [`budget_lock`] and restores defaults before releasing it.

use colossalai_autograd::optim::{adamw_update, sgd_momentum_update};
use colossalai_autograd::{Gelu, Layer, Linear, Sequential};
use colossalai_comm::World;
use colossalai_parallel::data_parallel::flatten_grads;
use colossalai_parallel::BucketedGradSync;
use colossalai_tensor::par::{self, DEFAULT_PAR_CUTOFF};
use colossalai_tensor::{init, set_kernel_threads, Tensor};
use colossalai_topology::systems::system_i;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn budget_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn restore_defaults() {
    set_kernel_threads(1);
    par::set_par_cutoff(DEFAULT_PAR_CUTOFF);
    par::set_enabled(true);
}

/// Big enough that MIN_CHUNK (4096) yields many chunks at every budget.
const N: usize = 64 * 1024;

fn rand_vec(seed: u64) -> Vec<f32> {
    init::uniform([N], -1.0, 1.0, &mut init::rng(seed))
        .data()
        .to_vec()
}

#[test]
fn sgd_momentum_is_bitwise_across_budgets() {
    let _g = budget_lock();
    restore_defaults();
    let p0 = rand_vec(1);
    let v0 = rand_vec(2);
    let grad = rand_vec(3);

    let run = |_| {
        let mut p = p0.clone();
        let mut v = v0.clone();
        for _ in 0..3 {
            sgd_momentum_update(&mut p, &mut v, &grad, 0.05, 0.9);
        }
        (p, v)
    };
    let serial = run(1usize);
    par::set_par_cutoff(1);
    for threads in [2usize, 3, 7] {
        set_kernel_threads(threads);
        assert_eq!(serial, run(threads), "sgd bits moved at budget {threads}");
    }
    restore_defaults();
}

#[test]
fn adamw_is_bitwise_across_budgets() {
    let _g = budget_lock();
    restore_defaults();
    let p0 = rand_vec(11);
    let grad = rand_vec(12);
    let m0 = rand_vec(13);
    let v0: Vec<f32> = rand_vec(14).iter().map(|x| x.abs()).collect();

    let run = |_| {
        let mut p = p0.clone();
        let mut m = m0.clone();
        let mut v = v0.clone();
        for t in 1..=3u64 {
            adamw_update(
                &mut p, &grad, &mut m, &mut v, t, 1e-3, 0.9, 0.999, 1e-8, 0.01,
            );
        }
        (p, m, v)
    };
    let serial = run(1usize);
    par::set_par_cutoff(1);
    for threads in [2usize, 3, 7] {
        set_kernel_threads(threads);
        assert_eq!(serial, run(threads), "adamw bits moved at budget {threads}");
    }
    restore_defaults();
}

fn make_model(seed: u64) -> Sequential {
    let mut rng = init::rng(seed);
    Sequential::new(vec![
        Box::new(Linear::from_rng("l1", 16, 32, true, &mut rng)),
        Box::new(Gelu::new()),
        Box::new(Linear::from_rng("l2", 32, 8, true, &mut rng)),
    ])
}

/// Runs a P-rank bucketed data-parallel gradient sync (blocking and
/// overlapped) and returns each rank's flattened synced gradients.
fn bucket_sync_grads(overlapped: bool) -> Vec<Vec<f32>> {
    let p = 4;
    let world = World::new(system_i());
    world.run_on(p, |ctx| {
        let g = ctx.world_group(p);
        let mut model = make_model(50);
        let mut rng = init::rng(60 + g.rank() as u64);
        let x = init::uniform([2, 16], -1.0, 1.0, &mut rng);
        let y = model.forward(&x);
        let dy = Tensor::ones(y.shape().clone());
        let mut sync = BucketedGradSync::new(&mut model, 64);
        if overlapped {
            let _ = sync.backward_overlapped(ctx, &g, &mut model, &dy);
        } else {
            let _ = model.backward(&dy);
            sync.sync_blocking(ctx, &g, &mut model);
        }
        flatten_grads(&mut model).data().to_vec()
    })
}

#[test]
fn bucket_flatten_and_writeback_are_bitwise_under_pool() {
    let _g = budget_lock();
    restore_defaults();
    let want_blocking = bucket_sync_grads(false);
    let want_overlap = bucket_sync_grads(true);
    assert_eq!(want_blocking, want_overlap, "overlap is bitwise-neutral");

    par::set_par_cutoff(1);
    for threads in [2usize, 4] {
        set_kernel_threads(threads);
        assert_eq!(
            want_blocking,
            bucket_sync_grads(false),
            "blocking sync bits moved at budget {threads}"
        );
        assert_eq!(
            want_overlap,
            bucket_sync_grads(true),
            "overlapped sync bits moved at budget {threads}"
        );
    }
    restore_defaults();
}

/// Each rank contributes a large distinct tensor; the rank-ordered chunked
/// reduction inside the collective must match the serial ascending-rank
/// fold bitwise, for both sum (all_reduce) and max (all_reduce_max).
fn collective_results() -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let p = 4;
    let world = World::new(system_i());
    let sums = world.run_on(p, |ctx| {
        let g = ctx.world_group(p);
        let t = init::uniform([N], -1.0, 1.0, &mut init::rng(70 + g.rank() as u64));
        g.all_reduce(ctx, t).data().to_vec()
    });
    let world = World::new(system_i());
    let maxes = world.run_on(p, |ctx| {
        let g = ctx.world_group(p);
        let t = init::uniform([N], -1.0, 1.0, &mut init::rng(80 + g.rank() as u64));
        g.all_reduce_max(ctx, t).data().to_vec()
    });
    (sums, maxes)
}

#[test]
fn group_reductions_are_bitwise_under_pool() {
    let _g = budget_lock();
    restore_defaults();
    let (want_sums, want_maxes) = collective_results();
    for r in 1..want_sums.len() {
        assert_eq!(want_sums[0], want_sums[r], "ranks agree serially");
    }

    par::set_par_cutoff(1);
    for threads in [2usize, 4] {
        set_kernel_threads(threads);
        let (sums, maxes) = collective_results();
        assert_eq!(want_sums, sums, "all_reduce bits moved at budget {threads}");
        assert_eq!(
            want_maxes, maxes,
            "all_reduce_max bits moved at budget {threads}"
        );
    }
    restore_defaults();
}
