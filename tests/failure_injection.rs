//! Integration: failure injection — fp16 overflow recovery, OOM behaviour,
//! and misuse detection across the stack.

use colossalai::comm::World;
use colossalai::core::{initialize, Config, OptimizerSpec};
use colossalai::memory::MemoryTracker;
use colossalai::models::TransformerConfig;
use colossalai::parallel::memcalc::{bert_step_bytes, SeqMode};
use colossalai::tensor::init;
use colossalai::tensor::ops::cross_entropy;
use colossalai::tensor::Tensor;
use colossalai::topology::systems::system_i;
use colossalai_autograd::{Gelu, Layer, Linear, Param, Sequential};

fn make_model(seed: u64) -> Box<dyn Layer> {
    let mut rng = init::rng(seed);
    Box::new(Sequential::new(vec![
        Box::new(Linear::from_rng("l1", 4, 8, true, &mut rng)),
        Box::new(Gelu::new()),
        Box::new(Linear::from_rng("l2", 8, 3, true, &mut rng)),
    ]))
}

#[test]
fn training_survives_injected_overflow() {
    // poison one backward with NaN grads mid-training; the loss scaler must
    // skip exactly that step, halve the scale, and training must recover
    let world = World::new(system_i());
    world.run_on(1, |ctx| {
        let cfg = Config::from_json(r#"{ "mixed_precision": true }"#).unwrap();
        let mut engine = initialize(
            ctx,
            &cfg,
            1,
            make_model(500),
            OptimizerSpec::AdamW {
                lr: 0.02,
                weight_decay: 0.0,
            },
        );
        let mut rng = init::rng(501);
        let x = init::uniform([6, 4], -1.0, 1.0, &mut rng);
        let t: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let mut losses = Vec::new();
        for step in 0..12 {
            engine.zero_grad();
            let logits = engine.forward(&x);
            let (loss, d) = cross_entropy(&logits, &t);
            let _ = engine.backward(&d);
            if step == 5 {
                // inject an overflow as if an fp16 kernel blew up
                engine.model_mut().visit_params(&mut |p: &mut Param| {
                    p.grad_mut().data_mut()[0] = f32::INFINITY;
                });
                assert!(!engine.step(), "poisoned step must be skipped");
            } else {
                assert!(engine.step(), "clean steps must apply");
                losses.push(loss);
            }
        }
        assert_eq!(engine.skipped_steps(), 1);
        assert_eq!(engine.steps(), 11);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "training must keep converging after the skip: {losses:?}"
        );
    });
}

#[test]
fn oom_search_matches_analytic_max_batch() {
    // drive the memory tracker with the analytic per-batch footprint and
    // find the OOM point empirically; it must agree with memcalc's search
    let cfg = TransformerConfig::bert_base();
    let capacity = 16u64 << 30;
    let p = 4;
    let analytic =
        colossalai::parallel::memcalc::max_batch(SeqMode::SequenceParallel, &cfg, 512, p, capacity);

    let mut tracker = MemoryTracker::new(capacity);
    let mut empirical = 0usize;
    for b in 1.. {
        let need = bert_step_bytes(SeqMode::SequenceParallel, &cfg, b, 512, p);
        match tracker.alloc(need) {
            Ok(()) => {
                tracker.free(need);
                empirical = b;
            }
            Err(oom) => {
                assert_eq!(oom.capacity, capacity);
                assert!(oom.requested > capacity);
                break;
            }
        }
    }
    assert_eq!(empirical, analytic, "tracker OOM point vs analytic search");
}

#[test]
fn dead_rank_failure_surfaces_to_the_caller() {
    // a rank that dies must abort the whole run loudly, not silently
    // produce partial results. NOTE: a rank dying *inside* a collective
    // would deadlock its peers — exactly like real NCCL, where a lost rank
    // hangs the communicator until a watchdog kills the job; our watchdog
    // is the panic propagating once surviving ranks finish their local
    // work, so the injection here happens outside any collective.
    let world = World::new(system_i());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        world.run_on(2, |ctx| {
            if ctx.rank() == 1 {
                panic!("injected device failure");
            }
            // rank 0 completes local-only work; the run must still fail
            Tensor::scalar(1.0).item()
        });
    }));
    assert!(result.is_err(), "the injected failure must surface");
}

#[test]
fn scaler_rescues_scale_after_repeated_overflows() {
    let world = World::new(system_i());
    world.run_on(1, |ctx| {
        let cfg = Config::from_json(r#"{ "mixed_precision": true }"#).unwrap();
        let mut engine = initialize(
            ctx,
            &cfg,
            1,
            make_model(502),
            OptimizerSpec::Sgd {
                lr: 0.1,
                momentum: 0.0,
            },
        );
        // repeated poison: the scaler keeps halving instead of crashing
        for _ in 0..5 {
            engine.model_mut().visit_params(&mut |p: &mut Param| {
                p.accumulate_grad(&Tensor::full(p.value().shape().clone(), f32::NAN));
            });
            assert!(!engine.step());
        }
        assert_eq!(engine.skipped_steps(), 5);
        // a clean step still applies afterwards
        engine.model_mut().visit_params(&mut |p: &mut Param| {
            p.accumulate_grad(&Tensor::full(p.value().shape().clone(), 0.5));
        });
        assert!(engine.step());
    });
}
