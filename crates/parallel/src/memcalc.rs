//! Per-mode memory footprints.
//!
//! Two families of formulas, both derived from the sharding layouts the
//! runnable layers in this crate actually implement (tests there verify the
//! layouts; these formulas just count them):
//!
//! * the two-linear-layer range-test model of Fig 8 — elements resident per
//!   device during forward + backward for each tensor-parallel mode;
//! * per-layer Transformer activation bytes for the 1D-TP vs sequence-
//!   parallel comparison of Fig 12.

use crate::volume::{int_cbrt, TpMode};
use colossalai_models::TransformerConfig;

/// Bytes per f32 element.
const F32: u64 = 4;

/// Per-device peak bytes for the Fig 8 model — two `h x h` linear layers
/// applied to `rows` input rows — under tensor-parallel mode `mode` on `p`
/// devices.
///
/// Counted: weight + gradient shards (all modes shard weights by `1/p`) and
/// the resident activations (input X, hidden H, output Y) plus the largest
/// communication transient each algorithm materializes:
///
/// * 1D duplicates X and Y on every device (the paper's Fig 4 criticism)
///   and shards only H;
/// * 2D/2.5D/3D shard all three, at the price of per-round panel buffers
///   (2D: an X-tile + W-tile; 2.5D: W panels are `d` times larger because
///   the weight grid is only `p/d` wide; 3D: gathered panels are `l` times
///   the resident tiles).
pub fn fig8_peak_bytes(mode: TpMode, rows: u64, h: u64, p: u64) -> u64 {
    let weights_and_grads = 2 * 2 * h * h / p;
    let act = match mode {
        TpMode::OneD => {
            // X and Y full, H sharded
            rows * h + rows * h / p + rows * h
        }
        TpMode::TwoD => {
            let tiles = 3 * rows * h / p;
            let panels = rows * h / p + h * h / p;
            tiles + panels
        }
        TpMode::TwoPointFiveD { depth } => {
            let d = depth as u64;
            let tiles = 3 * rows * h / p;
            let panels = rows * h / p + h * h * d / p;
            tiles + panels
        }
        TpMode::ThreeD => {
            let l = int_cbrt(p as usize).expect("3D needs a cube") as u64;
            let tiles = 3 * rows * h / p;
            let panels = rows * h * l / p + h * h * l / p;
            tiles + panels
        }
    };
    (weights_and_grads + act) * F32
}

/// Relative saving of `mode` vs 1D at the same operating point (the
/// percentages quoted for Fig 8), in `[0, 1)`.
pub fn fig8_saving_vs_1d(mode: TpMode, rows: u64, h: u64, p: u64) -> f64 {
    let m1 = fig8_peak_bytes(TpMode::OneD, rows, h, p) as f64;
    let mm = fig8_peak_bytes(mode, rows, h, p) as f64;
    1.0 - mm / m1
}

/// Per-layer activation bytes (fp16) of 1D tensor-parallel Transformer
/// training: layer inputs/outputs (the LayerNorm, residual, attention and
/// MLP boundaries, ~10 copies of `s*b*h`) are *duplicated* across the TP
/// group; only the interior (the remaining `24 + 5as/h` of Korthikanti's
/// 34) shards by `1/p`.
pub fn act_bytes_1d_tp(cfg: &TransformerConfig, batch: usize, seq: usize, p: usize) -> u64 {
    let s = seq as f64;
    let b = batch as f64;
    let h = cfg.hidden as f64;
    let a = cfg.heads as f64;
    let dup = 10.0;
    let sharded = 24.0 + 5.0 * a * s / h;
    (s * b * h * (dup + sharded / p as f64)) as u64
}

/// Per-layer activation bytes (fp16) of sequence-parallel training: *every*
/// activation is split along the sequence, so the whole footprint shards by
/// `1/p`.
pub fn act_bytes_seq_parallel(cfg: &TransformerConfig, batch: usize, seq: usize, p: usize) -> u64 {
    cfg.activation_bytes_per_layer(batch, seq) / p as u64
}

/// Model-data bytes per device (fp16 weights/grads + fp32 Adam states):
/// 1D TP shards by `p`; sequence parallelism replicates.
pub fn model_bytes_1d_tp(cfg: &TransformerConfig, p: usize) -> u64 {
    cfg.model_data_bytes() / p as u64
}

/// See [`model_bytes_1d_tp`].
pub fn model_bytes_seq_parallel(cfg: &TransformerConfig, _p: usize) -> u64 {
    cfg.model_data_bytes()
}

/// Whether sequence length/batch combination fits on a device with
/// `capacity` bytes under the given mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqMode {
    TensorParallel1d,
    SequenceParallel,
}

/// Total per-device bytes for BERT-style training at `(batch, seq)`.
pub fn bert_step_bytes(
    mode: SeqMode,
    cfg: &TransformerConfig,
    batch: usize,
    seq: usize,
    p: usize,
) -> u64 {
    let layers = cfg.layers as u64;
    match mode {
        SeqMode::TensorParallel1d => {
            model_bytes_1d_tp(cfg, p) + layers * act_bytes_1d_tp(cfg, batch, seq, p)
        }
        SeqMode::SequenceParallel => {
            model_bytes_seq_parallel(cfg, p) + layers * act_bytes_seq_parallel(cfg, batch, seq, p)
        }
    }
}

/// Largest batch (at fixed `seq`) that fits in `capacity` bytes — the Fig
/// 12a search. Returns 0 if even batch 1 OOMs.
pub fn max_batch(
    mode: SeqMode,
    cfg: &TransformerConfig,
    seq: usize,
    p: usize,
    capacity: u64,
) -> usize {
    let mut lo = 0usize;
    let mut hi = 1usize;
    while bert_step_bytes(mode, cfg, hi, seq, p) <= capacity {
        lo = hi;
        hi *= 2;
        if hi > 1 << 24 {
            break;
        }
    }
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if bert_step_bytes(mode, cfg, mid, seq, p) <= capacity {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Largest sequence length (at fixed `batch`) that fits — the Fig 12b
/// search.
pub fn max_seq(
    mode: SeqMode,
    cfg: &TransformerConfig,
    batch: usize,
    p: usize,
    capacity: u64,
) -> usize {
    let mut lo = 0usize;
    let mut hi = 64usize;
    while bert_step_bytes(mode, cfg, batch, hi, p) <= capacity {
        lo = hi;
        hi *= 2;
        if hi > 1 << 24 {
            break;
        }
    }
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if bert_step_bytes(mode, cfg, batch, mid, p) <= capacity {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Checks a mode/`p` pairing is realizable (1D additionally requires the
/// head-divisibility constraint the paper highlights).
pub fn seq_mode_admits(mode: SeqMode, cfg: &TransformerConfig, p: usize) -> bool {
    match mode {
        SeqMode::TensorParallel1d => cfg.heads.is_multiple_of(p),
        SeqMode::SequenceParallel => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_advanced_modes_beat_1d_at_paper_points() {
        // Fig 8b operating point: batch scan at 8 GPUs. The range test feeds
        // [batch, seq, hidden] inputs, so resident rows = batch * seq.
        let rows = 512 * 64;
        let h = 4096;
        let p = 8;
        let s25 = fig8_saving_vs_1d(TpMode::TwoPointFiveD { depth: 2 }, rows, h, p);
        let s3 = fig8_saving_vs_1d(TpMode::ThreeD, rows, h, p);
        // paper: 44% (2.5D) and 65% (3D) lower than 1D
        assert!(s25 > 0.35, "2.5D saving {s25:.2} (paper: 0.44)");
        assert!(s3 > 0.45, "3D saving {s3:.2} (paper: 0.65)");
    }

    #[test]
    fn fig8_hidden_scan_savings_stay_large() {
        // Fig 8d: hidden scan at batch 64 (x seq rows), 8 GPUs; paper: 62%
        // (2.5D) and 74.2% (3D) better at h = 16384
        let rows = 64 * 512;
        let p = 8;
        for h in [1024u64, 4096, 16384] {
            let s25 = fig8_saving_vs_1d(TpMode::TwoPointFiveD { depth: 2 }, rows, h, p);
            let s3 = fig8_saving_vs_1d(TpMode::ThreeD, rows, h, p);
            assert!(s25 > 0.4, "h={h}: 2.5D saving {s25:.2}");
            assert!(s3 > 0.4, "h={h}: 3D saving {s3:.2}");
        }
    }

    #[test]
    fn fig8_memory_monotone_in_batch_and_hidden() {
        for mode in [TpMode::OneD, TpMode::TwoD] {
            let a = fig8_peak_bytes(mode, 128, 1024, 4);
            let b = fig8_peak_bytes(mode, 256, 1024, 4);
            let c = fig8_peak_bytes(mode, 128, 2048, 4);
            assert!(b > a && c > a);
        }
    }

    #[test]
    fn fig12_seq_parallel_reaches_larger_batch() {
        let cfg = TransformerConfig::bert_base();
        let capacity = 40u64 << 30; // System III A100-40GB
                                    // the advantage grows with p (paper: up to 4.44x at 12 GPUs)
        let mut prev_ratio = 0.0;
        for p in [4usize, 6, 12] {
            assert!(seq_mode_admits(SeqMode::TensorParallel1d, &cfg, p));
            let b_tp = max_batch(SeqMode::TensorParallel1d, &cfg, 512, p, capacity);
            let b_sp = max_batch(SeqMode::SequenceParallel, &cfg, 512, p, capacity);
            let ratio = b_sp as f64 / b_tp as f64;
            assert!(ratio > 1.2, "p={p}: SP batch {b_sp} vs TP {b_tp}");
            assert!(ratio > prev_ratio, "advantage must grow with p");
            prev_ratio = ratio;
        }
        assert!(
            prev_ratio > 2.0,
            "12-GPU ratio {prev_ratio:.2} (paper: 4.44)"
        );
    }

    #[test]
    fn fig12_seq_parallel_reaches_longer_sequences() {
        let cfg = TransformerConfig::bert_base();
        let capacity = 40u64 << 30;
        let p = 4;
        let s_tp = max_seq(SeqMode::TensorParallel1d, &cfg, 64, p, capacity);
        let s_sp = max_seq(SeqMode::SequenceParallel, &cfg, 64, p, capacity);
        assert!(s_sp > s_tp, "SP seq {s_sp} vs TP {s_tp}");
    }

    #[test]
    fn head_divisibility_constraint() {
        let cfg = TransformerConfig::bert_base(); // 12 heads
        assert!(seq_mode_admits(SeqMode::TensorParallel1d, &cfg, 4));
        assert!(seq_mode_admits(SeqMode::TensorParallel1d, &cfg, 6));
        assert!(seq_mode_admits(SeqMode::TensorParallel1d, &cfg, 12));
        assert!(!seq_mode_admits(SeqMode::TensorParallel1d, &cfg, 8));
        assert!(seq_mode_admits(SeqMode::SequenceParallel, &cfg, 8));
    }

    #[test]
    fn max_batch_is_maximal() {
        let cfg = TransformerConfig::bert_base();
        let capacity = 16u64 << 30;
        let b = max_batch(SeqMode::SequenceParallel, &cfg, 512, 4, capacity);
        assert!(b > 0);
        assert!(bert_step_bytes(SeqMode::SequenceParallel, &cfg, b, 512, 4) <= capacity);
        assert!(bert_step_bytes(SeqMode::SequenceParallel, &cfg, b + 1, 512, 4) > capacity);
    }

    #[test]
    fn int_cbrt_helper_reexport_consistency() {
        // guards against the memcalc <-> volume helpers drifting apart
        assert_eq!(crate::volume::int_sqrt(49), Some(7));
        assert_eq!(int_cbrt(8), Some(2));
    }
}
