//! 2D-parallel LayerNorm (Colossal-AI's `layernorm_2d`): normalizes over a
//! hidden dimension that is sharded across the grid's columns, so the row
//! statistics (mean, variance) are assembled with row-group all-reduces.
//!
//! Together with [`crate::tp2d::Linear2d`] this makes whole MLP blocks
//! runnable under 2D tensor parallelism with every activation sharded.

use crate::tp2d::Grid2d;
use colossalai_autograd::{Gelu, Layer, Param};
use colossalai_comm::DeviceCtx;
use colossalai_tensor::Tensor;

/// LayerNorm over tiles `[M/j, h/j]`: statistics span the grid row; gamma
/// and beta are sharded by grid column (replicated down each column, with
/// column-group-reduced gradients, like `Linear2d`'s bias).
pub struct LayerNorm2d {
    ctx: DeviceCtx,
    grid: Grid2d,
    gamma: Param,
    beta: Param,
    eps: f32,
    /// Full (global) normalized width.
    h_global: usize,
    cache: Option<(Tensor, Tensor, Tensor)>, // (x, mean, inv_std) per global row
}

impl LayerNorm2d {
    pub fn new(ctx: &DeviceCtx, grid: &Grid2d, name: &str, h_global: usize) -> Self {
        assert!(
            h_global.is_multiple_of(grid.j),
            "hidden {h_global} not divisible by grid side {}",
            grid.j
        );
        let local = h_global / grid.j;
        LayerNorm2d {
            ctx: ctx.clone(),
            grid: grid.clone(),
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones([local])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros([local])),
            eps: 1e-5,
            h_global,
            cache: None,
        }
    }
}

impl Layer for LayerNorm2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "LayerNorm2d operates on [M/j, h/j] tiles");
        let rows = x.dims()[0];
        let h = self.h_global as f32;

        // per-global-row sums assembled across the grid row
        let local_sum = colossalai_tensor::ops::sum_axis(x, 1);
        let local_sq = colossalai_tensor::ops::sum_axis(&x.map(|v| v * v), 1);
        let sum = self.grid.row_group.all_reduce(&self.ctx, local_sum);
        let sq = self.grid.row_group.all_reduce(&self.ctx, local_sq);

        let mean = sum.map(|s| s / h);
        let inv_std = sq
            .zip(&mean, |q, m| q / h - m * m)
            .map(|var| 1.0 / (var + self.eps).sqrt());

        let mut y = x.clone();
        for r in 0..rows {
            let m = mean.data()[r];
            let is = inv_std.data()[r];
            let row = &mut y.data_mut()[r * x.dims()[1]..(r + 1) * x.dims()[1]];
            for (v, (&g, &b)) in row.iter_mut().zip(
                self.gamma
                    .value()
                    .data()
                    .iter()
                    .zip(self.beta.value().data()),
            ) {
                *v = (*v - m) * is * g + b;
            }
        }
        self.cache = Some((x.clone(), mean, inv_std));
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (x, mean, inv_std) = self.cache.take().expect("backward before forward");
        let (rows, local) = (x.dims()[0], x.dims()[1]);
        let h = self.h_global as f32;

        // dgamma / dbeta: column sums over the global batch rows = local
        // column sums reduced over the grid *column* group
        let mut dgamma_local = Tensor::zeros([local]);
        let mut dbeta_local = Tensor::zeros([local]);
        // row sums of dy*gamma and dy*gamma*xhat span the grid *row* group
        let mut s1_local = Tensor::zeros([rows]);
        let mut s2_local = Tensor::zeros([rows]);
        for r in 0..rows {
            let m = mean.data()[r];
            let is = inv_std.data()[r];
            for c in 0..local {
                let xhat = (x.at(&[r, c]) - m) * is;
                let d = dy.at(&[r, c]);
                let dyg = d * self.gamma.value().data()[c];
                s1_local.data_mut()[r] += dyg;
                s2_local.data_mut()[r] += dyg * xhat;
                dgamma_local.data_mut()[c] += d * xhat;
                dbeta_local.data_mut()[c] += d;
            }
        }
        let s1 = self.grid.row_group.all_reduce(&self.ctx, s1_local);
        let s2 = self.grid.row_group.all_reduce(&self.ctx, s2_local);
        let dgamma = self.grid.col_group.all_reduce(&self.ctx, dgamma_local);
        let dbeta = self.grid.col_group.all_reduce(&self.ctx, dbeta_local);
        self.gamma.accumulate_grad(&dgamma);
        self.beta.accumulate_grad(&dbeta);

        let mut dx = Tensor::zeros(x.shape().clone());
        for r in 0..rows {
            let m = mean.data()[r];
            let is = inv_std.data()[r];
            for c in 0..local {
                let xhat = (x.at(&[r, c]) - m) * is;
                let dyg = dy.at(&[r, c]) * self.gamma.value().data()[c];
                let v = is * (dyg - s1.data()[r] / h - xhat * s2.data()[r] / h);
                dx.set(&[r, c], v);
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

/// A fully 2D-sharded MLP block: `LayerNorm2d -> Linear2d -> GELU ->
/// Linear2d` with a residual connection — the Feed Forward half of Fig 2
/// with *all* activations sharded `1/p`.
pub struct Mlp2d {
    ln: LayerNorm2d,
    fc1: crate::tp2d::Linear2d,
    act: Gelu,
    fc2: crate::tp2d::Linear2d,
}

impl Mlp2d {
    pub fn from_global(
        ctx: &DeviceCtx,
        grid: &Grid2d,
        name: &str,
        w1: &Tensor,
        b1: &Tensor,
        w2: &Tensor,
        b2: &Tensor,
    ) -> Self {
        let h = w1.dims()[0];
        Mlp2d {
            ln: LayerNorm2d::new(ctx, grid, &format!("{name}.ln"), h),
            fc1: crate::tp2d::Linear2d::from_global(
                ctx,
                grid,
                &format!("{name}.fc1"),
                w1,
                Some(b1),
            ),
            act: Gelu::new(),
            fc2: crate::tp2d::Linear2d::from_global(
                ctx,
                grid,
                &format!("{name}.fc2"),
                w2,
                Some(b2),
            ),
        }
    }
}

impl Layer for Mlp2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let n = self.ln.forward(x);
        let h = self.fc1.forward(&n);
        let a = self.act.forward(&h);
        let y = self.fc2.forward(&a);
        x.zip(&y, |a, b| a + b)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let da = self.fc2.backward(dy);
        let dh = self.act.backward(&da);
        let dn = self.fc1.backward(&dh);
        let dx = self.ln.backward(&dn);
        dy.zip(&dx, |a, b| a + b)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln.visit_params(f);
        self.fc1.visit_params(f);
        self.act.visit_params(f);
        self.fc2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tp2d::{assemble_tiles, tile_of};
    use colossalai_autograd::{LayerNorm, Linear};
    use colossalai_comm::World;
    use colossalai_tensor::init;
    use colossalai_topology::systems::system_i;

    #[test]
    fn layernorm2d_matches_serial() {
        let (j, m, h) = (2usize, 4usize, 8usize);
        let mut rng = init::rng(850);
        let x = init::uniform([m, h], -2.0, 2.0, &mut rng);
        let dy = init::uniform([m, h], -1.0, 1.0, &mut rng);

        let mut serial = LayerNorm::new("ln", h);
        let y_want = serial.forward(&x);
        let dx_want = serial.backward(&dy);
        let mut serial_grads = Vec::new();
        serial.visit_params(&mut |p| serial_grads.push(p.grad().clone()));

        let world = World::new(system_i());
        let results = world.run_on(j * j, |ctx| {
            let members: Vec<usize> = (0..j * j).collect();
            let grid = Grid2d::new(ctx, &members);
            let mut ln = LayerNorm2d::new(ctx, &grid, "ln", h);
            let y = ln.forward(&tile_of(&x, j, grid.row, grid.col));
            let dx = ln.backward(&tile_of(&dy, j, grid.row, grid.col));
            let mut grads = Vec::new();
            ln.visit_params(&mut |p| grads.push(p.grad().clone()));
            (y, dx, grads, grid.col)
        });
        let y_tiles: Vec<Tensor> = results.iter().map(|(y, _, _, _)| y.clone()).collect();
        let dx_tiles: Vec<Tensor> = results.iter().map(|(_, d, _, _)| d.clone()).collect();
        assert!(assemble_tiles(&y_tiles, j).allclose(&y_want, 1e-4));
        assert!(assemble_tiles(&dx_tiles, j).allclose(&dx_want, 2e-4));
        // gamma/beta grad slices match the serial slices (per column)
        for (_, _, grads, col) in &results {
            for (gi, want) in serial_grads.iter().enumerate() {
                let slice = want.narrow(0, col * (h / j), h / j);
                assert!(
                    grads[gi].allclose(&slice, 2e-4),
                    "param {gi} col {col}: diff {}",
                    grads[gi].max_abs_diff(&slice)
                );
            }
        }
    }

    #[test]
    fn mlp2d_matches_serial_residual_block() {
        let (j, m, h) = (2usize, 4usize, 8usize);
        let mut rng = init::rng(851);
        let w1 = init::lecun_normal(h, 2 * h, &mut rng);
        let b1 = init::uniform([2 * h], -0.1, 0.1, &mut rng);
        let w2 = init::lecun_normal(2 * h, h, &mut rng);
        let b2 = init::uniform([h], -0.1, 0.1, &mut rng);
        let x = init::uniform([m, h], -1.0, 1.0, &mut rng);
        let dy = init::uniform([m, h], -1.0, 1.0, &mut rng);

        // serial reference: ln -> fc1 -> gelu -> fc2 (+ residual)
        let mut ln = LayerNorm::new("ln", h);
        let mut fc1 = Linear::from_parts("fc1", w1.clone(), Some(b1.clone()));
        let mut act = Gelu::new();
        let mut fc2 = Linear::from_parts("fc2", w2.clone(), Some(b2.clone()));
        let y_want = {
            let n = ln.forward(&x);
            let y = fc2.forward(&act.forward(&fc1.forward(&n)));
            x.zip(&y, |a, b| a + b)
        };
        let dx_want = {
            let dn = fc1.backward(&act.backward(&fc2.backward(&dy)));
            let d = ln.backward(&dn);
            dy.zip(&d, |a, b| a + b)
        };

        let world = World::new(system_i());
        let results = world.run_on(j * j, |ctx| {
            let members: Vec<usize> = (0..j * j).collect();
            let grid = Grid2d::new(ctx, &members);
            let mut mlp = Mlp2d::from_global(ctx, &grid, "mlp", &w1, &b1, &w2, &b2);
            let y = mlp.forward(&tile_of(&x, j, grid.row, grid.col));
            let dx = mlp.backward(&tile_of(&dy, j, grid.row, grid.col));
            (y, dx)
        });
        let y_tiles: Vec<Tensor> = results.iter().map(|(y, _)| y.clone()).collect();
        let dx_tiles: Vec<Tensor> = results.iter().map(|(_, d)| d.clone()).collect();
        let y_got = assemble_tiles(&y_tiles, j);
        let dx_got = assemble_tiles(&dx_tiles, j);
        assert!(
            y_got.allclose(&y_want, 2e-4),
            "fwd diff {}",
            y_got.max_abs_diff(&y_want)
        );
        assert!(
            dx_got.allclose(&dx_want, 5e-4),
            "bwd diff {}",
            dx_got.max_abs_diff(&dx_want)
        );
    }

    #[test]
    fn mlp2d_trains_in_lockstep_across_grid() {
        let (j, m, h) = (2usize, 4usize, 8usize);
        let mut rng = init::rng(852);
        let w1 = init::lecun_normal(h, h, &mut rng);
        let b1 = Tensor::zeros([h]);
        let w2 = init::lecun_normal(h, h, &mut rng);
        let b2 = Tensor::zeros([h]);
        let x = init::uniform([m, h], -1.0, 1.0, &mut rng);

        let world = World::new(system_i());
        let norms = world.run_on(j * j, |ctx| {
            let members: Vec<usize> = (0..j * j).collect();
            let grid = Grid2d::new(ctx, &members);
            let mut mlp = Mlp2d::from_global(ctx, &grid, "mlp", &w1, &b1, &w2, &b2);
            let x_tile = tile_of(&x, j, grid.row, grid.col);
            for _ in 0..3 {
                let y = mlp.forward(&x_tile);
                let _ = mlp.backward(&y); // dL/dy = y (quadratic objective)
                mlp.visit_params(&mut |p| {
                    let g = p.grad().clone();
                    p.value_mut().axpy(-0.01, &g);
                    p.zero_grad();
                });
            }
            let y = mlp.forward(&x_tile);
            y.norm()
        });
        // final outputs per tile are deterministic; the run must complete
        // with finite values on every rank
        assert!(norms.iter().all(|n| n.is_finite()));
    }
}
