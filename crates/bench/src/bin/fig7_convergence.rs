//! E2 — Fig 7: convergence of tensor-parallel training vs data-parallel.
//!
//! The paper trains ViT on ImageNet-1k for 250 epochs and shows the accuracy
//! curves of every tensor-parallel mode tracking PyTorch DDP. We reproduce
//! the *arithmetic-equivalence* content of that figure at laptop scale:
//!
//! 1. a ViT-tiny trained serially vs with 1D tensor parallelism on 4
//!    simulated devices — loss curves must coincide;
//! 2. a two-layer MLP classifier trained under 2D / 2.5D / 3D parallelism
//!    on 4-8 devices — per-step losses must match the serial run, since
//!    each distributed linear is numerically equal to the serial one.

use colossalai_autograd::{Layer, Linear};
use colossalai_bench::{print_table, trace_arg, write_trace};
use colossalai_comm::World;
use colossalai_models::data::SyntheticVision;
use colossalai_models::TransformerConfig;
use colossalai_parallel::tp25d::{tile_x_25d, Grid25d, Linear25d};
use colossalai_parallel::tp2d::{tile_of, Grid2d, Linear2d};
use colossalai_parallel::tp3d::{tile_x_3d, tile_y_3d, Grid3d, Linear3d};
use colossalai_parallel::vit1d::VisionTransformer1d;
use colossalai_tensor::ops::{cross_entropy, relu};
use colossalai_tensor::{init, Tensor};
use colossalai_topology::systems::system_i;

const STEPS: usize = 20;
const LR: f32 = 0.05;

fn vit_curves(trace: bool) -> (Vec<f32>, Vec<f32>, World) {
    let cfg = TransformerConfig {
        layers: 2,
        hidden: 16,
        heads: 4,
        mlp_ratio: 2,
        vocab: 5,
        max_seq: 8,
    };
    let patch_dim = 12;
    let data = SyntheticVision::new(cfg.max_seq, patch_dim, cfg.vocab, 7);

    // serial reference
    let mut rng = init::rng(1000);
    let mut serial = colossalai_models::VisionTransformer::new(&cfg, patch_dim, &mut rng);
    let mut serial_losses = Vec::new();
    for step in 0..STEPS {
        let (x, t) = data.batch(8, step as u64);
        serial.zero_grad();
        let logits = serial.forward(&x);
        let (loss, d) = cross_entropy(&logits, &t);
        serial_losses.push(loss);
        let _ = serial.backward(&d);
        serial.visit_params(&mut |p| {
            let g = p.grad().clone();
            p.value_mut().axpy(-LR, &g);
        });
    }

    // 1D tensor parallel on 4 devices
    let world = World::new(system_i());
    if trace {
        world.enable_tracing();
    }
    let mut tp_losses = world.run_on(4, |ctx| {
        let g = ctx.world_group(4);
        let mut rng = init::rng(1000);
        let mut vit = VisionTransformer1d::new(ctx, &g, &cfg, patch_dim, &mut rng);
        let mut losses = Vec::new();
        for step in 0..STEPS {
            let (x, t) = data.batch(8, step as u64);
            vit.zero_grad();
            let logits = vit.forward(&x);
            let (loss, d) = cross_entropy(&logits, &t);
            losses.push(loss);
            let _ = vit.backward(&d);
            vit.visit_params(&mut |p| {
                let gr = p.grad().clone();
                p.value_mut().axpy(-LR, &gr);
            });
        }
        losses
    });
    (serial_losses, tp_losses.swap_remove(0), world)
}

/// Serial 2-layer MLP trajectory for the advanced-mode comparison.
fn serial_mlp_losses(h: usize, data: &SyntheticVision) -> Vec<f32> {
    let mut rng = init::rng(2000);
    let w1 = init::lecun_normal(h, h, &mut rng);
    let w2 = init::lecun_normal(h, 8, &mut rng);
    let mut l1 = Linear::from_parts("l1", w1, None);
    let mut l2 = Linear::from_parts("l2", w2, None);
    let mut losses = Vec::new();
    for step in 0..STEPS {
        let (x, t) = data.batch(8, step as u64);
        let x = x.reshape([8, h]);
        l1.zero_grad();
        l2.zero_grad();
        let hid = relu(&l1.forward(&x));
        let logits = l2.forward(&hid);
        let (loss, d) = cross_entropy(&logits, &t);
        losses.push(loss);
        let dh = l2.backward(&d);
        let mask = {
            let pre = l1.forward(&x); // recompute pre-activation for the mask
            colossalai_tensor::ops::relu_grad(&pre)
        };
        let _ = l1.backward(&dh.zip(&mask, |a, b| a * b));
        for l in [&mut l1, &mut l2] {
            l.visit_params(&mut |p| {
                let g = p.grad().clone();
                p.value_mut().axpy(-LR, &g);
            });
        }
    }
    losses
}

/// The same MLP trained under a tensor-parallel mode; returns rank-0 losses.
fn parallel_mlp_losses(mode: &str, p: usize, h: usize, data: &SyntheticVision) -> Vec<f32> {
    let world = World::new(system_i());
    let mut out = world.run_on(p, |ctx| {
        let members: Vec<usize> = (0..p).collect();
        let mut rng = init::rng(2000);
        let w1 = init::lecun_normal(h, h, &mut rng);
        let w2 = init::lecun_normal(h, 8, &mut rng);
        enum M {
            D2(Grid2d, Linear2d, Linear2d),
            D25(Grid25d, Linear25d, Linear25d),
            D3(Grid3d, Linear3d, Linear3d),
        }
        let mut m = match mode {
            "2d" => {
                let grid = Grid2d::new(ctx, &members);
                let l1 = Linear2d::from_global(ctx, &grid, "l1", &w1, None);
                let l2 = Linear2d::from_global(ctx, &grid, "l2", &w2, None);
                M::D2(grid, l1, l2)
            }
            "2.5d" => {
                let grid = Grid25d::new(ctx, &members, 2);
                let l1 = Linear25d::from_global(ctx, &grid, "l1", &w1, None);
                let l2 = Linear25d::from_global(ctx, &grid, "l2", &w2, None);
                M::D25(grid, l1, l2)
            }
            "3d" => {
                let grid = Grid3d::new(ctx, &members);
                let l1 = Linear3d::from_global(ctx, &grid, "l1", &w1, None);
                let l2 = Linear3d::from_global(ctx, &grid, "l2", &w2, None);
                M::D3(grid, l1, l2)
            }
            _ => unreachable!(),
        };
        let mut losses = Vec::new();
        for step in 0..STEPS {
            let (x, t) = data.batch(8, step as u64);
            let x = x.reshape([8, h]);
            // run fwd through both layers with a ReLU between; the ReLU is
            // elementwise so it applies to tiles directly
            let loss = match &mut m {
                M::D2(grid, l1, l2) => step_2d(ctx, grid, l1, l2, &x, &t),
                M::D25(grid, l1, l2) => step_25d(ctx, grid, l1, l2, &x, &t),
                M::D3(grid, l1, l2) => step_3d(ctx, grid, l1, l2, &x, &t),
            };
            losses.push(loss);
        }
        losses
    });
    out.swap_remove(0)
}

fn sgd(l: &mut dyn Layer) {
    l.visit_params(&mut |p| {
        let g = p.grad().clone();
        p.value_mut().axpy(-LR, &g);
    });
    l.zero_grad();
}

fn step_2d(
    ctx: &colossalai_comm::DeviceCtx,
    grid: &Grid2d,
    l1: &mut Linear2d,
    l2: &mut Linear2d,
    x: &Tensor,
    t: &[usize],
) -> f32 {
    let x_tile = tile_of(x, grid.j, grid.row, grid.col);
    let h_tile = l1.forward(&x_tile);
    let a_tile = relu(&h_tile);
    let logit_tile = l2.forward(&a_tile);
    // gather logits to compute the loss identically everywhere
    let row_full = grid.row_group.all_gather_cat(ctx, logit_tile.clone(), 1);
    let full = grid.col_group.all_gather_cat(ctx, row_full, 0);
    let (loss, dfull) = cross_entropy(&full, t);
    let d_tile = tile_of(&dfull, grid.j, grid.row, grid.col);
    let da = l2.backward(&d_tile);
    let mask = colossalai_tensor::ops::relu_grad(&h_tile);
    let _ = l1.backward(&da.zip(&mask, |a, b| a * b));
    sgd(l1);
    sgd(l2);
    loss
}

fn step_25d(
    ctx: &colossalai_comm::DeviceCtx,
    grid: &Grid25d,
    l1: &mut Linear25d,
    l2: &mut Linear25d,
    x: &Tensor,
    t: &[usize],
) -> f32 {
    let x_tile = tile_x_25d(x, grid);
    let h_tile = l1.forward(&x_tile);
    let a_tile = relu(&h_tile);
    let logit_tile = l2.forward(&a_tile);
    let g2 = &grid.grid2d;
    let row_full = g2.row_group.all_gather_cat(ctx, logit_tile.clone(), 1);
    let layer_full = g2.col_group.all_gather_cat(ctx, row_full, 0);
    let full = grid.depth_group.all_gather_cat(ctx, layer_full, 0);
    let (loss, dfull) = cross_entropy(&full, t);
    let d_tile = tile_x_25d(&dfull, grid);
    let da = l2.backward(&d_tile);
    let mask = colossalai_tensor::ops::relu_grad(&h_tile);
    let _ = l1.backward(&da.zip(&mask, |a, b| a * b));
    sgd(l1);
    sgd(l2);
    loss
}

fn step_3d(
    ctx: &colossalai_comm::DeviceCtx,
    grid: &Grid3d,
    l1: &mut Linear3d,
    l2: &mut Linear3d,
    x: &Tensor,
    t: &[usize],
) -> f32 {
    let x_tile = tile_x_3d(x, grid);
    let h_tile = l1.forward(&x_tile); // Y layout
    let a_tile = relu(&h_tile);
    // the second 3D linear consumes X-layout tiles; convert Y -> X layout by
    // gathering to full and re-slicing (test-scale shim; a production model
    // would chain layouts directly)
    let b = 8;
    let h_mid = l1_out_cols(grid, &a_tile);
    let full_mid = gather_y(ctx, grid, &a_tile, b, h_mid);
    let x2_tile = tile_x_3d(&full_mid, grid);
    let logit_tile = l2.forward(&x2_tile);
    let classes = 8;
    let full = gather_y(ctx, grid, &logit_tile, b, classes);
    let (loss, dfull) = cross_entropy(&full, t);
    let d_tile = tile_y_3d(&dfull, grid);
    let dx2 = l2.backward(&d_tile); // X layout grad of full_mid
    let dmid_full = gather_x(ctx, grid, &dx2, b, h_mid);
    let dmid_y = tile_y_3d(&dmid_full, grid);
    let mask = colossalai_tensor::ops::relu_grad(&h_tile);
    let _ = l1.backward(&dmid_y.zip(&mask, |a, b| a * b));
    sgd(l1);
    sgd(l2);
    loss
}

fn l1_out_cols(grid: &Grid3d, tile: &Tensor) -> usize {
    tile.dims()[1] * grid.l
}

/// Gathers a Y-layout tile `[M/l^2, N/l]` back to the full `[M, N]` matrix.
fn gather_y(
    ctx: &colossalai_comm::DeviceCtx,
    grid: &Grid3d,
    tile: &Tensor,
    m: usize,
    n: usize,
) -> Tensor {
    // row sub-blocks gathered over j, row blocks over i... simplest: gather
    // over all three axes in layout order: rows over j (sub-block), rows
    // over i (block), cols over k
    let rows_j = grid.j_group.all_gather_cat(ctx, tile.clone(), 0);
    let rows_ij = grid.i_group.all_gather_cat(ctx, rows_j, 0);
    let full = grid.k_group.all_gather_cat(ctx, rows_ij, 1);
    assert_eq!(full.dims(), &[m, n]);
    full
}

/// Gathers an X-layout tile `[M/l^2, K/l]` back to the full `[M, K]` matrix.
fn gather_x(
    ctx: &colossalai_comm::DeviceCtx,
    grid: &Grid3d,
    tile: &Tensor,
    m: usize,
    k: usize,
) -> Tensor {
    let rows_k = grid.k_group.all_gather_cat(ctx, tile.clone(), 0);
    let rows_ik = grid.i_group.all_gather_cat(ctx, rows_k, 0);
    let full = grid.j_group.all_gather_cat(ctx, rows_ik, 1);
    assert_eq!(full.dims(), &[m, k]);
    full
}

fn main() {
    let trace_path = trace_arg();
    // Part 1: ViT, DP vs 1D TP
    let (serial, tp1d, tp_world) = vit_curves(trace_path.is_some());
    let mut rows = Vec::new();
    for (i, (s, t)) in serial.iter().zip(&tp1d).enumerate() {
        rows.push(vec![
            i.to_string(),
            format!("{s:.4}"),
            format!("{t:.4}"),
            format!("{:.1e}", (s - t).abs()),
        ]);
    }
    print_table(
        "Fig 7 (part 1): ViT-tiny loss — data parallel vs 1D tensor parallel (4 GPUs)",
        &["step", "serial/DP", "1D TP", "|diff|"],
        &rows,
    );
    let max_diff = serial
        .iter()
        .zip(&tp1d)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max loss deviation: {max_diff:.2e} (arithmetic equivalence)");
    if let Some(path) = &trace_path {
        write_trace(&tp_world, path);
    }

    // Part 2: the advanced modes on the 2-layer classifier
    let h = 16;
    let data = SyntheticVision::new(4, 4, 8, 13);
    let serial = serial_mlp_losses(h, &data);
    let m2d = parallel_mlp_losses("2d", 4, h, &data);
    let m25d = parallel_mlp_losses("2.5d", 8, h, &data);
    let m3d = parallel_mlp_losses("3d", 8, h, &data);
    let mut rows = Vec::new();
    for i in 0..STEPS {
        rows.push(vec![
            i.to_string(),
            format!("{:.4}", serial[i]),
            format!("{:.4}", m2d[i]),
            format!("{:.4}", m25d[i]),
            format!("{:.4}", m3d[i]),
        ]);
    }
    print_table(
        "Fig 7 (part 2): classifier loss — serial vs 2D (4 GPUs) / 2.5D / 3D (8 GPUs)",
        &["step", "serial", "2D", "2.5D", "3D"],
        &rows,
    );
    for (name, losses) in [("2D", &m2d), ("2.5D", &m25d), ("3D", &m3d)] {
        let d = serial
            .iter()
            .zip(losses)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!("{name}: max loss deviation from serial = {d:.2e}");
    }
}
