//! Deterministic synthetic workloads standing in for ImageNet-1k and
//! Wikipedia (neither is available in this environment; see DESIGN.md).
//!
//! The generators produce *learnable* data — labels are deterministic
//! functions of the inputs — so convergence experiments (Fig 7) have real
//! signal to fit, and every batch is reproducible from (seed, batch index),
//! which lets all data-parallel ranks slice the identical global batch.

use colossalai_tensor::{init, Tensor};

/// Synthetic stand-in for an image-classification dataset: pre-patchified
/// "images" whose label depends on the dominant direction of a planted
/// class prototype.
pub struct SyntheticVision {
    n_patches: usize,
    patch_dim: usize,
    classes: usize,
    prototypes: Tensor,
    seed: u64,
}

impl SyntheticVision {
    pub fn new(n_patches: usize, patch_dim: usize, classes: usize, seed: u64) -> Self {
        let mut rng = init::rng(seed ^ 0xc1a55);
        SyntheticVision {
            n_patches,
            patch_dim,
            classes,
            prototypes: init::normal([classes, n_patches * patch_dim], 0.0, 1.0, &mut rng),
            seed,
        }
    }

    /// The `index`-th global batch: `(patches [batch, n_patches, patch_dim],
    /// labels)`. Deterministic in (seed, index).
    pub fn batch(&self, batch: usize, index: u64) -> (Tensor, Vec<usize>) {
        let mut rng = init::rng(self.seed.wrapping_add(index.wrapping_mul(0x9e37_79b9)));
        let mut xs = Vec::with_capacity(batch * self.n_patches * self.patch_dim);
        let mut labels = Vec::with_capacity(batch);
        let d = self.n_patches * self.patch_dim;
        for _ in 0..batch {
            let label = (init::uniform([1], 0.0, self.classes as f32, &mut rng).item()) as usize;
            let label = label.min(self.classes - 1);
            let noise = init::normal([d], 0.0, 1.0, &mut rng);
            let proto = &self.prototypes.data()[label * d..(label + 1) * d];
            // signal + noise
            for (i, &n) in noise.data().iter().enumerate() {
                xs.push(0.8 * proto[i] + 0.6 * n);
            }
            labels.push(label);
        }
        (
            Tensor::from_vec([batch, self.n_patches, self.patch_dim], xs),
            labels,
        )
    }
}

/// Synthetic token corpus standing in for Wikipedia: sequences follow a
/// deterministic affine recurrence (so next-token prediction is learnable).
pub struct SyntheticText {
    vocab: usize,
    seed: u64,
}

impl SyntheticText {
    pub fn new(vocab: usize, seed: u64) -> Self {
        assert!(vocab >= 4, "vocab too small");
        SyntheticText { vocab, seed }
    }

    /// The `index`-th batch of `[batch, seq]` token ids.
    pub fn batch(&self, batch: usize, seq: usize, index: u64) -> Tensor {
        let mut rng = init::rng(self.seed.wrapping_add(index.wrapping_mul(0x5851_f42d)));
        let mut data = Vec::with_capacity(batch * seq);
        for _ in 0..batch {
            let start =
                init::uniform([1], 0.0, self.vocab as f32, &mut rng).item() as usize % self.vocab;
            let mut tok = start;
            for _ in 0..seq {
                data.push(tok as f32);
                tok = (tok * 3 + 1) % self.vocab;
            }
        }
        Tensor::from_vec([batch, seq], data)
    }

    /// Masked-LM-style targets: the token itself shifted by one (matching
    /// the recurrence, so they are predictable).
    pub fn next_tokens(&self, tokens: &Tensor) -> Vec<usize> {
        tokens
            .data()
            .iter()
            .map(|&t| ((t as usize) * 3 + 1) % self.vocab)
            .collect()
    }

    /// BERT-style masked-LM corruption: replaces ~`mask_prob` of the tokens
    /// with the reserved mask id (`vocab - 1`) and returns
    /// `(masked_tokens, targets, mask_positions)` where `targets[i]` is the
    /// original token at flattened position `mask_positions[i]`.
    /// Deterministic in `(seed, index)` like [`SyntheticText::batch`].
    pub fn mask_for_mlm(
        &self,
        tokens: &Tensor,
        mask_prob: f32,
        index: u64,
    ) -> (Tensor, Vec<usize>, Vec<usize>) {
        assert!((0.0..1.0).contains(&mask_prob), "mask_prob out of range");
        let mask_id = (self.vocab - 1) as f32;
        let mut rng = init::rng(self.seed ^ index.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let draws = init::uniform([tokens.numel()], 0.0, 1.0, &mut rng);
        let mut masked = tokens.clone();
        let mut targets = Vec::new();
        let mut positions = Vec::new();
        for (i, (&tok, &u)) in tokens.data().iter().zip(draws.data()).enumerate() {
            if u < mask_prob {
                targets.push(tok as usize);
                positions.push(i);
                masked.data_mut()[i] = mask_id;
            }
        }
        (masked, targets, positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vision_batches_are_deterministic() {
        let ds = SyntheticVision::new(4, 6, 10, 42);
        let (x1, y1) = ds.batch(8, 3);
        let (x2, y2) = ds.batch(8, 3);
        assert_eq!(x1, x2);
        assert_eq!(y1, y2);
        let (x3, _) = ds.batch(8, 4);
        assert_ne!(x1, x3, "different indices give different batches");
    }

    #[test]
    fn vision_labels_in_range() {
        let ds = SyntheticVision::new(4, 6, 7, 1);
        let (_, labels) = ds.batch(64, 0);
        assert!(labels.iter().all(|&l| l < 7));
        // non-degenerate: more than one class appears
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn vision_is_learnable_by_linear_probe() {
        // nearest-prototype classification must beat chance by a wide margin
        let ds = SyntheticVision::new(4, 6, 5, 7);
        let (x, labels) = ds.batch(100, 0);
        let d = 24;
        let mut correct = 0;
        for (i, &label) in labels.iter().enumerate() {
            let sample = &x.data()[i * d..(i + 1) * d];
            let mut best = (f32::NEG_INFINITY, 0);
            for c in 0..5 {
                let proto = &ds.prototypes.data()[c * d..(c + 1) * d];
                let dot: f32 = sample.iter().zip(proto).map(|(a, b)| a * b).sum();
                if dot > best.0 {
                    best = (dot, c);
                }
            }
            if best.1 == label {
                correct += 1;
            }
        }
        assert!(correct > 60, "only {correct}/100 correct");
    }

    #[test]
    fn text_follows_recurrence() {
        let ds = SyntheticText::new(13, 0);
        let t = ds.batch(2, 6, 0);
        for b in 0..2 {
            for s in 0..5 {
                let cur = t.at(&[b, s]) as usize;
                let next = t.at(&[b, s + 1]) as usize;
                assert_eq!(next, (cur * 3 + 1) % 13);
            }
        }
    }

    #[test]
    fn mlm_masking_is_deterministic_and_recoverable() {
        let ds = SyntheticText::new(17, 9);
        let tokens = ds.batch(2, 10, 0);
        let (m1, t1, p1) = ds.mask_for_mlm(&tokens, 0.3, 0);
        let (m2, t2, p2) = ds.mask_for_mlm(&tokens, 0.3, 0);
        assert_eq!(m1, m2);
        assert_eq!(t1, t2);
        assert_eq!(p1, p2);
        // masked positions hold the mask id; everything else is untouched
        let mask_id = 16.0;
        for (i, (&orig, &masked)) in tokens.data().iter().zip(m1.data()).enumerate() {
            if p1.contains(&i) {
                assert_eq!(masked, mask_id);
            } else {
                assert_eq!(masked, orig);
            }
        }
        // targets recover the originals
        for (t, &pos) in t1.iter().zip(&p1) {
            assert_eq!(*t, tokens.data()[pos] as usize);
        }
        // roughly the requested fraction is masked
        let frac = p1.len() as f32 / tokens.numel() as f32;
        assert!((0.05..0.6).contains(&frac), "mask fraction {frac}");
    }

    #[test]
    fn text_batches_deterministic() {
        let ds = SyntheticText::new(29, 5);
        assert_eq!(ds.batch(4, 8, 2), ds.batch(4, 8, 2));
        assert_ne!(ds.batch(4, 8, 2), ds.batch(4, 8, 3));
    }
}
