//! Criterion bench: fwd+bwd of the distributed linear layers (1D column/row
//! vs 2D SUMMA vs 3D) at a fixed problem size, against the serial kernel.

use colossalai_autograd::{Layer, Linear};
use colossalai_comm::World;
use colossalai_parallel::tp1d::ColumnParallelLinear;
use colossalai_parallel::tp2d::{tile_of, Grid2d, Linear2d};
use colossalai_parallel::tp3d::{tile_x_3d, tile_y_3d, Grid3d, Linear3d};
use colossalai_tensor::init;
use colossalai_topology::systems::system_i;
use criterion::{criterion_group, criterion_main, Criterion};

const M: usize = 64;
const K: usize = 64;
const N: usize = 64;

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_matmul_fwd_bwd");
    group.sample_size(10);
    let mut rng = init::rng(1);
    let w = init::lecun_normal(K, N, &mut rng);
    let x = init::uniform([M, K], -1.0, 1.0, &mut rng);
    let dy = init::uniform([M, N], -1.0, 1.0, &mut rng);

    group.bench_function("serial", |b| {
        let mut l = Linear::from_parts("s", w.clone(), None);
        b.iter(|| {
            let y = l.forward(&x);
            std::hint::black_box(l.backward(&dy));
            std::hint::black_box(y);
        });
    });

    group.bench_function("1d_column_4dev", |b| {
        let world = World::new(system_i());
        b.iter(|| {
            world.run_on(4, |ctx| {
                let g = ctx.world_group(4);
                let mut l = ColumnParallelLinear::from_global(ctx, &g, "c", &w, None, true);
                let y = l.forward(&x);
                std::hint::black_box(l.backward(&dy));
                std::hint::black_box(y);
            });
        });
    });

    group.bench_function("2d_summa_4dev", |b| {
        let world = World::new(system_i());
        b.iter(|| {
            world.run_on(4, |ctx| {
                let members: Vec<usize> = (0..4).collect();
                let grid = Grid2d::new(ctx, &members);
                let mut l = Linear2d::from_global(ctx, &grid, "l", &w, None);
                let y = l.forward(&tile_of(&x, 2, grid.row, grid.col));
                std::hint::black_box(l.backward(&tile_of(&dy, 2, grid.row, grid.col)));
                std::hint::black_box(y);
            });
        });
    });

    group.bench_function("3d_agarwal_8dev", |b| {
        let world = World::new(system_i());
        b.iter(|| {
            world.run_on(8, |ctx| {
                let members: Vec<usize> = (0..8).collect();
                let grid = Grid3d::new(ctx, &members);
                let mut l = Linear3d::from_global(ctx, &grid, "l", &w, None);
                let y = l.forward(&tile_x_3d(&x, &grid));
                std::hint::black_box(l.backward(&tile_y_3d(&dy, &grid)));
                std::hint::black_box(y);
            });
        });
    });

    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
