//! Algebraic property tests for the tensor kernels.

use colossalai_tensor::{bmm, matmul, matmul_at, matmul_bt, Tensor};
use proptest::prelude::*;

fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = colossalai_tensor::init::rng(seed);
    colossalai_tensor::init::uniform([rows, cols], -2.0, 2.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn chunk_cat_inverse(rows in 1usize..6, cols_blocks in 1usize..5, parts in 1usize..5, seed in 0u64..1000) {
        let cols = cols_blocks * parts;
        let t = tensor(rows, cols, seed);
        let chunks = t.chunk(1, parts);
        prop_assert_eq!(Tensor::cat(&chunks, 1), t);
    }

    #[test]
    fn transpose_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let t = tensor(rows, cols, seed);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn permute_roundtrip_3d(a in 1usize..4, b in 1usize..4, c in 1usize..4, seed in 0u64..1000) {
        let t = tensor(a * b, c, seed).reshaped([a, b, c]);
        let p = t.permute(&[2, 0, 1]);
        let back = p.permute(&[1, 2, 0]);
        prop_assert_eq!(back, t);
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000
    ) {
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed + 1);
        let c = tensor(k, n, seed + 2);
        let lhs = matmul(&a, &b.zip(&c, |x, y| x + y));
        let rhs = matmul(&a, &b).zip(&matmul(&a, &c), |x, y| x + y);
        prop_assert!(lhs.allclose(&rhs, 1e-4), "diff {}", lhs.max_abs_diff(&rhs));
    }

    #[test]
    fn matmul_transpose_identity(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000
    ) {
        // (A B)^T = B^T A^T
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed + 7);
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        prop_assert!(lhs.allclose(&rhs, 1e-4));
        // the fused transposed kernels agree with explicit transposes
        prop_assert!(matmul_bt(&a, &b.transpose()).allclose(&matmul(&a, &b), 1e-4));
        prop_assert!(matmul_at(&a.transpose(), &b).allclose(&matmul(&a, &b), 1e-4));
    }

    #[test]
    fn block_matmul_equals_full(
        mb in 1usize..4, kb in 1usize..4, n in 1usize..5, seed in 0u64..1000
    ) {
        // [A1; A2] @ B == [A1 @ B; A2 @ B]  (row-block identity behind every
        // distributed decomposition in the workspace)
        let (m, k) = (mb * 2, kb * 2);
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed + 3);
        let full = matmul(&a, &b);
        let blocks = a.chunk(0, 2);
        let stacked = Tensor::cat(&[matmul(&blocks[0], &b), matmul(&blocks[1], &b)], 0);
        prop_assert!(stacked.allclose(&full, 1e-4));
        // A @ [B1 B2] == [A @ B1, A @ B2] requires even n
        if n % 2 == 0 {
            let bcols = b.chunk(1, 2);
            let side = Tensor::cat(&[matmul(&a, &bcols[0]), matmul(&a, &bcols[1])], 1);
            prop_assert!(side.allclose(&full, 1e-4));
        }
        // inner-dimension split: A = [A1 A2], B = [B1; B2]:
        // A @ B == A1 @ B1 + A2 @ B2 (the SUMMA accumulation identity)
        let acols = a.chunk(1, 2);
        let brows = b.chunk(0, 2);
        let sum = matmul(&acols[0], &brows[0]).zip(&matmul(&acols[1], &brows[1]), |x, y| x + y);
        prop_assert!(sum.allclose(&full, 1e-4));
    }

    #[test]
    fn bmm_is_batched_matmul(batch in 1usize..4, m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in 0u64..1000) {
        let a = tensor(batch * m, k, seed).reshaped([batch, m, k]);
        let b = tensor(batch * k, n, seed + 5).reshaped([batch, k, n]);
        let c = bmm(&a, &b);
        for t in 0..batch {
            let at = a.narrow(0, t, 1).reshaped([m, k]);
            let bt = b.narrow(0, t, 1).reshaped([k, n]);
            let ct = c.narrow(0, t, 1).reshaped([m, n]);
            prop_assert!(ct.allclose(&matmul(&at, &bt), 1e-4));
        }
    }

    #[test]
    fn softmax_invariant_under_shift(cols in 2usize..8, shift in -5.0f32..5.0, seed in 0u64..1000) {
        use colossalai_tensor::ops::softmax;
        let x = tensor(3, cols, seed);
        let shifted = x.map(|v| v + shift);
        let a = softmax(&x);
        let b = softmax(&shifted);
        prop_assert!(a.allclose(&b, 1e-5), "softmax must be shift-invariant");
    }

    #[test]
    fn narrow_matches_indexing(rows in 2usize..6, cols in 2usize..6, seed in 0u64..1000) {
        let t = tensor(rows, cols, seed);
        let start = rows / 2;
        let len = rows - start;
        let n = t.narrow(0, start, len);
        for i in 0..len {
            for j in 0..cols {
                prop_assert_eq!(n.at(&[i, j]), t.at(&[start + i, j]));
            }
        }
    }
}
