//! Property-based integration tests (proptest) for the DESIGN.md invariants
//! that span crates: distributed-vs-serial equivalence for arbitrary
//! admissible shapes, collective algebra, chunk-manager data integrity.

use colossalai::comm::World;
use colossalai::memory::{ChunkManager, Tier};
use colossalai::parallel::tp25d::{tile_x_25d, Grid25d, Linear25d};
use colossalai::parallel::tp2d::{assemble_tiles, tile_of, Grid2d, Linear2d};
use colossalai::parallel::tp3d::{tile_x_3d, tile_y_3d, Grid3d, Linear3d};
use colossalai::tensor::{init, Tensor};
use colossalai::topology::systems::system_i;
use colossalai::topology::Link;
use colossalai_autograd::{Layer, Linear};
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn all_reduce_is_sum_any_shape(
        rows in 1usize..5,
        cols in 1usize..5,
        seed in 0u64..1000,
    ) {
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let mut rng = init::rng(seed.wrapping_add(ctx.rank() as u64 * 101));
            let t = init::uniform([rows, cols], -1.0, 1.0, &mut rng);
            (t.clone(), g.all_reduce(ctx, t))
        });
        let mut want = Tensor::zeros([rows, cols]);
        for (input, _) in &out {
            want.axpy(1.0, input);
        }
        for (_, reduced) in &out {
            prop_assert!(reduced.allclose(&want, 1e-5));
        }
    }

    #[test]
    fn reduce_scatter_then_gather_equals_all_reduce(
        chunks in 1usize..4,
        seed in 0u64..1000,
    ) {
        let p = 4;
        let n = chunks * p; // divisible length
        let world = World::new(system_i());
        let out = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut rng = init::rng(seed.wrapping_add(ctx.rank() as u64 * 37));
            let t = init::uniform([n], -1.0, 1.0, &mut rng);
            let ar = g.all_reduce(ctx, t.clone());
            let shard = g.reduce_scatter(ctx, t, 0);
            let rebuilt = g.all_gather_cat(ctx, shard, 0);
            (ar, rebuilt)
        });
        for (ar, rebuilt) in &out {
            prop_assert_eq!(ar.data(), rebuilt.data());
        }
    }

    #[test]
    fn scatter_gather_roundtrip(
        chunks in 1usize..4,
        seed in 0u64..1000,
    ) {
        let p = 4;
        let n = chunks * p;
        let mut rng = init::rng(seed);
        let payload = init::uniform([n], -1.0, 1.0, &mut rng);
        let world = World::new(system_i());
        let out = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let input = if g.rank() == 0 { payload.clone() } else { Tensor::zeros([0]) };
            let mine = g.scatter(ctx, input, 0, 0);
            g.gather_cat(ctx, mine, 0, 0)
        });
        prop_assert_eq!(out[0].data(), payload.data());
    }

    #[test]
    fn linear2d_equals_serial_random_shapes(
        mb in 1usize..4,
        kb in 1usize..4,
        nb in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let j = 2;
        let (m, k, n) = (mb * j * 2, kb * j, nb * j);
        let mut rng = init::rng(seed);
        let w = init::lecun_normal(k, n, &mut rng);
        let x = init::uniform([m, k], -1.0, 1.0, &mut rng);
        let dy = init::uniform([m, n], -1.0, 1.0, &mut rng);
        let mut serial = Linear::from_parts("s", w.clone(), None);
        let y_want = serial.forward(&x);
        let dx_want = serial.backward(&dy);

        let world = World::new(system_i());
        let results = world.run_on(j * j, |ctx| {
            let members: Vec<usize> = (0..j * j).collect();
            let grid = Grid2d::new(ctx, &members);
            let mut l = Linear2d::from_global(ctx, &grid, "l", &w, None);
            let y = l.forward(&tile_of(&x, j, grid.row, grid.col));
            let dx = l.backward(&tile_of(&dy, j, grid.row, grid.col));
            (y, dx)
        });
        let y_tiles: Vec<Tensor> = results.iter().map(|(y, _)| y.clone()).collect();
        let dx_tiles: Vec<Tensor> = results.iter().map(|(_, d)| d.clone()).collect();
        prop_assert!(assemble_tiles(&y_tiles, j).allclose(&y_want, 1e-3));
        prop_assert!(assemble_tiles(&dx_tiles, j).allclose(&dx_want, 1e-3));
    }

    #[test]
    fn linear25d_equals_serial_random_shapes(
        mb in 1usize..3,
        kb in 1usize..3,
        seed in 0u64..10_000,
    ) {
        let (j, d) = (2, 2);
        let p = j * j * d;
        let (m, k, n) = (mb * j * d * 2, kb * j, 4);
        let mut rng = init::rng(seed);
        let w = init::lecun_normal(k, n, &mut rng);
        let x = init::uniform([m, k], -1.0, 1.0, &mut rng);
        let mut serial = Linear::from_parts("s", w.clone(), None);
        let y_want = serial.forward(&x);

        let world = World::new(system_i());
        let results = world.run_on(p, |ctx| {
            let members: Vec<usize> = (0..p).collect();
            let grid = Grid25d::new(ctx, &members, d);
            let mut l = Linear25d::from_global(ctx, &grid, "l", &w, None);
            l.forward(&tile_x_25d(&x, &grid))
        });
        // reassemble depth-major
        let jj = j * j;
        let slices: Vec<Tensor> = (0..d)
            .map(|dep| assemble_tiles(&results[dep * jj..(dep + 1) * jj], j))
            .collect();
        prop_assert!(Tensor::cat(&slices, 0).allclose(&y_want, 1e-3));
    }

    #[test]
    fn linear3d_equals_serial_random_shapes(
        mb in 1usize..3,
        kb in 1usize..3,
        nb in 1usize..3,
        seed in 0u64..10_000,
    ) {
        let l = 2;
        let p = l * l * l;
        let (m, k, n) = (mb * l * l, kb * l * l, nb * l);
        let mut rng = init::rng(seed);
        let w = init::lecun_normal(k, n, &mut rng);
        let x = init::uniform([m, k], -1.0, 1.0, &mut rng);
        let mut serial = Linear::from_parts("s", w.clone(), None);
        let y_want = serial.forward(&x);

        let world = World::new(system_i());
        world.run_on(p, |ctx| {
            let members: Vec<usize> = (0..p).collect();
            let grid = Grid3d::new(ctx, &members);
            let mut layer = Linear3d::from_global(ctx, &grid, "l", &w, None);
            let y = layer.forward(&tile_x_3d(&x, &grid));
            assert!(
                y.allclose(&tile_y_3d(&y_want, &grid), 1e-3),
                "3D tile mismatch"
            );
        });
    }

    #[test]
    fn chunk_manager_preserves_data_under_pressure(
        n_tensors in 2usize..10,
        budget_chunks in 1u64..4,
        seed in 0u64..1000,
    ) {
        let chunk_elems = 8;
        let mut mgr = ChunkManager::new(chunk_elems, budget_chunks * chunk_elems as u64 * 4, Link::pcie());
        let mut rng = init::rng(seed);
        let payloads: Vec<Vec<f32>> = (0..n_tensors)
            .map(|_| init::uniform([chunk_elems], -9.0, 9.0, &mut rng).into_vec())
            .collect();
        let refs: Vec<_> = payloads.iter().map(|p| mgr.register(p)).collect();
        // random access pattern: read everything twice in different orders
        for r in refs.iter() {
            prop_assert_eq!(mgr.read(*r), payloads[refs.iter().position(|x| x == r).unwrap()].clone());
        }
        for (i, r) in refs.iter().enumerate().rev() {
            prop_assert_eq!(mgr.read(*r), payloads[i].clone());
            prop_assert_eq!(mgr.tier_of(*r), Tier::Gpu);
        }
        // GPU budget is never exceeded
        prop_assert!(mgr.gpu_peak() <= budget_chunks * chunk_elems as u64 * 4);
    }

    #[test]
    fn pipeline_gradients_match_serial_for_random_configs(
        stages in 2usize..5,
        micros in 1usize..6,
        seed in 0u64..1000,
    ) {
        use colossalai::parallel::pipeline::{partition_layers, PipelineStage, Schedule};
        use colossalai_autograd::Sequential;

        let n_layers = 5; // >= max stages
        let build_all = |seed: u64| -> Vec<Box<dyn Layer>> {
            let mut rng = init::rng(seed);
            (0..n_layers)
                .map(|i| {
                    Box::new(Linear::from_rng(&format!("l{i}"), 4, 4, true, &mut rng))
                        as Box<dyn Layer>
                })
                .collect()
        };
        let micros_data: Vec<Tensor> = {
            let mut rng = init::rng(seed ^ 0xabc);
            (0..micros)
                .map(|_| init::uniform([2, 4], -1.0, 1.0, &mut rng))
                .collect()
        };

        // serial reference: accumulate grads over all micro-batches with a
        // quadratic objective (dL/dy = y)
        let mut serial = Sequential::new(build_all(seed));
        for x in &micros_data {
            let y = serial.forward(x);
            let _ = serial.backward(&y);
        }
        let mut want = Vec::new();
        serial.visit_params(&mut |p| want.push(p.grad().clone()));

        let world = World::new(system_i());
        let micros_data2 = micros_data.clone();
        let results = world.run_on(stages, |ctx| {
            let devices: Vec<usize> = (0..stages).collect();
            let mut all = build_all(seed);
            let parts = partition_layers(all.len(), stages);
            let (start, end) = parts[ctx.rank()];
            let mut tail = all.split_off(start);
            let _ = tail.split_off(end - start);
            let mut stage = PipelineStage::new(ctx, &devices, Sequential::new(tail));
            let mut lf = |_: u64, out: &Tensor| (0.0f32, out.clone());
            let _ = stage.run_step(
                if seed % 2 == 0 { Schedule::GPipe } else { Schedule::OneFOneB },
                stage.is_first().then_some(&micros_data2[..]),
                stage.is_last().then_some(
                    &mut lf as &mut dyn FnMut(u64, &Tensor) -> (f32, Tensor),
                ),
                micros,
            );
            let mut grads = Vec::new();
            stage.visit_params(&mut |p| grads.push(p.grad().clone()));
            grads
        });
        let got: Vec<Tensor> = results.into_iter().flatten().collect();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!(g.allclose(w, 1e-4), "grad diff {}", g.max_abs_diff(w));
        }
    }

    #[test]
    fn zero_stages_bitwise_equal_ddp_for_random_models(
        d_in in 2usize..6,
        d_mid in 2usize..8,
        steps in 1usize..4,
        seed in 0u64..1000,
        stage_sel in 0u8..3,
    ) {
        use colossalai::parallel::data_parallel::{flatten_params, split_batch, DataParallel};
        use colossalai::parallel::zero::{ZeroOptimizer, ZeroStage};
        use colossalai_autograd::{AdamW, Sequential};

        let p = 2;
        let make_model = |seed: u64| -> Sequential {
            let mut rng = init::rng(seed);
            Sequential::new(vec![
                Box::new(Linear::from_rng("a", d_in, d_mid, true, &mut rng)),
                Box::new(Linear::from_rng("b", d_mid, 3, true, &mut rng)),
            ])
        };
        let batches: Vec<Tensor> = {
            let mut rng = init::rng(seed ^ 0x77);
            (0..steps)
                .map(|_| init::uniform([2 * p, d_in], -1.0, 1.0, &mut rng))
                .collect()
        };

        // DDP baseline
        let world = World::new(system_i());
        let batches2 = batches.clone();
        let mut ddp = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut dp = DataParallel::new(ctx, &g, make_model(seed));
            let mut opt = AdamW::new(0.01, 0.01);
            for x in &batches2 {
                dp.zero_grad();
                let x_local = split_batch(x, p, g.rank());
                let y = dp.forward(&x_local);
                let _ = dp.backward(&y); // quadratic objective
                // match ZeRO's mean semantics: DataParallel::backward already
                // averaged, so step directly
                opt.step_layer(&mut dp);
            }
            flatten_params(&mut dp)
        });
        let want = ddp.swap_remove(0);

        let stage = match stage_sel {
            0 => ZeroStage::One,
            1 => ZeroStage::Two,
            _ => ZeroStage::Three,
        };
        let world = World::new(system_i());
        let batches3 = batches.clone();
        let mut zero = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut model = make_model(seed);
            let mut opt = ZeroOptimizer::new(ctx, &g, &mut model, stage, 0.01, 0.01);
            for x in &batches3 {
                if stage == ZeroStage::Three {
                    opt.materialize_params(&mut model);
                }
                let x_local = split_batch(x, p, g.rank());
                let y = model.forward(&x_local);
                let _ = model.backward(&y);
                opt.step(&mut model);
            }
            flatten_params(&mut model)
        });
        let got = zero.swap_remove(0);
        prop_assert_eq!(got.data(), want.data());
    }

    #[test]
    fn f16_pack_unpack_bounded_error(data in tensor_strategy(64)) {
        let packed = colossalai::tensor::f16::pack_f16(&data);
        let back = colossalai::tensor::f16::unpack_f16(&packed);
        for (a, b) in data.iter().zip(&back) {
            prop_assert!((a - b).abs() <= a.abs() * 2.0f32.powi(-11) + 1e-7);
        }
    }
}
