//! Data-parallel step time on the multi-node System III under three
//! gradient-sync schedules:
//!
//! 1. **flat blocking** — flat-ring all-reduce after backward (the PR-2
//!    baseline, per-bucket but serial);
//! 2. **hierarchical blocking** — the topology-aware selector swaps in the
//!    two-level schedule, still blocking;
//! 3. **hierarchical + overlap** — each bucket's all-reduce launches on the
//!    comm stream as soon as its last gradient is produced during backward.
//!
//! All three produce bitwise-identical parameters (checked here); only the
//! charged virtual time moves. Pass `--trace <out.json>` to export the
//! Chrome trace of the overlapped run — the per-rank "device N comm" tracks
//! show the bucket collectives riding under the backward span.
//!
//! A fourth leg measures *wall-clock* steps/s of the overlapped schedule
//! with a larger per-rank batch (so the real GEMMs dominate), once under
//! the deterministic default and once under fast numeric mode
//! (`COLOSSAL_FAST` — FMA microkernels; DESIGN.md §13). Both legs are
//! bitwise-reproducible within their mode; only the cross-mode bits differ.
//! `--json` prints one machine-readable object with the virtual times,
//! the parity verdict and the det/fast wall throughputs.

use colossalai_autograd::{Layer, Linear, Sequential};
use colossalai_bench::{print_table, trace_arg, write_trace};
use colossalai_comm::{AllReduceAlgo, DeviceCtx, World};
use colossalai_parallel::data_parallel::{flatten_params, split_batch, DataParallel};
use colossalai_parallel::{TimedLayer, DEFAULT_BUCKET_BYTES};
use colossalai_tensor::init;
use colossalai_tensor::ops::cross_entropy;
use colossalai_topology::systems::system_iii;

/// Data-parallel degree: 16 ranks = 4 full nodes of System III.
const P: usize = 16;
const STEPS: usize = 3;
const HIDDEN: usize = 256;
const LAYERS: usize = 4;
/// Modeled kernel time per layer (an A100-scale GEMM at this size).
const T_FWD: f64 = 8e-6;
const T_BWD: f64 = 16e-6;

fn make_model(ctx: &DeviceCtx, seed: u64) -> Sequential {
    let mut rng = init::rng(seed);
    let timed = |ctx: &DeviceCtx, l: Linear| Box::new(TimedLayer::new(ctx, l, T_FWD, T_BWD));
    let mut layers: Vec<Box<dyn Layer>> = vec![timed(
        ctx,
        Linear::from_rng("in", 32, HIDDEN, true, &mut rng),
    )];
    for i in 0..LAYERS {
        layers.push(timed(
            ctx,
            Linear::from_rng(&format!("h{i}"), HIDDEN, HIDDEN, true, &mut rng),
        ));
    }
    layers.push(timed(
        ctx,
        Linear::from_rng("out", HIDDEN, 8, true, &mut rng),
    ));
    Sequential::new(layers)
}

/// Runs STEPS of DP training; returns (max rank clock, params, world).
fn run(algo: Option<AllReduceAlgo>, overlap: bool, trace: bool) -> (f64, Vec<f32>, World) {
    let world = World::new(system_iii());
    world.force_allreduce_algo(algo);
    if trace {
        world.enable_tracing();
    }
    let mut rng = init::rng(7);
    let xs: Vec<_> = (0..STEPS)
        .map(|_| init::uniform([P * 2, 32], -1.0, 1.0, &mut rng))
        .collect();
    let out = world.run_on(P, |ctx| {
        let g = ctx.world_group(P);
        // small buckets relative to the model so several fire per backward
        let mut dp = DataParallel::with_bucket_bytes(
            ctx,
            &g,
            make_model(ctx, 11),
            DEFAULT_BUCKET_BYTES.min(HIDDEN * HIDDEN * 2 * 4),
        )
        .with_overlap(overlap);
        let mut opt = colossalai_autograd::AdamW::new(0.01, 0.01);
        for x in &xs {
            dp.zero_grad();
            let x_local = split_batch(x, P, g.rank());
            let t: Vec<usize> = (0..x_local.dims()[0]).map(|i| i % 8).collect();
            let logits = dp.forward(&x_local);
            let (_, d) = cross_entropy(&logits, &t);
            let _ = dp.backward(&d);
            opt.step_layer(&mut dp);
        }
        (ctx.clock(), flatten_params(&mut dp).into_vec())
    });
    let makespan = out.iter().map(|(t, _)| *t).fold(0.0, f64::max);
    (makespan, out.into_iter().next().unwrap().1, world)
}

/// Wall-clock steps/s of the overlapped schedule, deterministic vs fast
/// mode. This leg reshapes the workload so the *real GEMMs* dominate the
/// wall: 4 ranks (the 16-rank world's message simulation would swamp the
/// compute on a 1-core host), a 512-wide model without `TimedLayer`
/// wrappers (virtual time is irrelevant here), and 128 rows per rank.
/// Passes **interleave** the two modes (det, fast, det, fast, ...) and each
/// mode reports its median — on a shared host, back-to-back legs let
/// machine-speed drift land entirely on one mode and invert the ratio.
/// Each mode's final parameters are asserted bitwise-reproducible across
/// its passes.
fn run_wall_pair() -> (f64, f64) {
    const WALL_P: usize = 4;
    const WALL_HIDDEN: usize = 512;
    const WALL_ROWS: usize = 128; // rows per rank (vs 2 in the virtual legs)
    const PASSES: usize = 5;
    let make_wall_model = |seed: u64| {
        let mut rng = init::rng(seed);
        let mut layers: Vec<Box<dyn Layer>> = vec![Box::new(Linear::from_rng(
            "in",
            32,
            WALL_HIDDEN,
            true,
            &mut rng,
        ))];
        for i in 0..LAYERS {
            layers.push(Box::new(Linear::from_rng(
                &format!("h{i}"),
                WALL_HIDDEN,
                WALL_HIDDEN,
                true,
                &mut rng,
            )));
        }
        layers.push(Box::new(Linear::from_rng(
            "out",
            WALL_HIDDEN,
            8,
            true,
            &mut rng,
        )));
        Sequential::new(layers)
    };
    let one_pass = |fast: bool| -> (f64, Vec<f32>) {
        colossalai_tensor::set_fast_mode(fast);
        let world = World::new(system_iii());
        world.force_allreduce_algo(None);
        let mut rng = init::rng(7);
        let xs: Vec<_> = (0..STEPS)
            .map(|_| init::uniform([WALL_P * WALL_ROWS, 32], -1.0, 1.0, &mut rng))
            .collect();
        let t0 = std::time::Instant::now();
        let out = world.run_on(WALL_P, |ctx| {
            let g = ctx.world_group(WALL_P);
            let mut dp = DataParallel::with_bucket_bytes(
                ctx,
                &g,
                make_wall_model(11),
                DEFAULT_BUCKET_BYTES.min(WALL_HIDDEN * WALL_HIDDEN * 2 * 4),
            )
            .with_overlap(true);
            let mut opt = colossalai_autograd::AdamW::new(0.01, 0.01);
            for x in &xs {
                dp.zero_grad();
                let x_local = split_batch(x, WALL_P, g.rank());
                let t: Vec<usize> = (0..x_local.dims()[0]).map(|i| i % 8).collect();
                let logits = dp.forward(&x_local);
                let (_, d) = cross_entropy(&logits, &t);
                let _ = dp.backward(&d);
                opt.step_layer(&mut dp);
            }
            flatten_params(&mut dp).into_vec()
        });
        let wall = t0.elapsed().as_secs_f64();
        colossalai_tensor::set_fast_mode(false);
        (wall, out.into_iter().next().unwrap())
    };
    let mut walls = [Vec::with_capacity(PASSES), Vec::with_capacity(PASSES)];
    let mut params: [Option<Vec<f32>>; 2] = [None, None];
    for _ in 0..PASSES {
        for (mode, fast) in [(0usize, false), (1, true)] {
            let (wall, p) = one_pass(fast);
            walls[mode].push(wall);
            match &params[mode] {
                None => params[mode] = Some(p),
                Some(prev) => assert_eq!(
                    prev, &p,
                    "wall leg not reproducible within mode (fast={fast})"
                ),
            }
        }
    }
    let mut sps = [0.0f64; 2];
    for mode in 0..2 {
        walls[mode].sort_by(|a, b| a.total_cmp(b));
        sps[mode] = STEPS as f64 / walls[mode][PASSES / 2];
    }
    (sps[0], sps[1])
}

fn main() {
    let (t_flat, p_flat, _) = run(Some(AllReduceAlgo::FlatRing), false, false);
    let (t_hier, p_hier, _) = run(None, false, false);
    let (t_over, p_over, world) = run(None, true, trace_arg().is_some());

    assert_eq!(p_flat, p_hier, "algorithm choice changed the bits");
    assert_eq!(p_flat, p_over, "overlap changed the bits");

    let (sps_det, sps_fast) = run_wall_pair();
    let fma = colossalai_tensor::fma_available();

    if std::env::args().any(|a| a == "--json") {
        println!(
            "{{\"bitwise_match\": true, \"fma\": {fma}, \
             \"virtual_step_ms_flat\": {:.3}, \
             \"virtual_step_ms_hier\": {:.3}, \
             \"virtual_step_ms_overlap\": {:.3}, \
             \"wall_steps_per_s_det\": {sps_det:.2}, \
             \"wall_steps_per_s_fast\": {sps_fast:.2}, \
             \"fast_speedup\": {:.3}}}",
            t_flat * 1e3 / STEPS as f64,
            t_hier * 1e3 / STEPS as f64,
            t_over * 1e3 / STEPS as f64,
            sps_fast / sps_det
        );
        return;
    }

    let rows = vec![
        vec![
            "flat ring, blocking".to_string(),
            format!("{:.3}", t_flat * 1e3 / STEPS as f64),
            "1.00x".to_string(),
        ],
        vec![
            "hierarchical, blocking".to_string(),
            format!("{:.3}", t_hier * 1e3 / STEPS as f64),
            format!("{:.2}x", t_flat / t_hier),
        ],
        vec![
            "hierarchical + overlap".to_string(),
            format!("{:.3}", t_over * 1e3 / STEPS as f64),
            format!("{:.2}x", t_flat / t_over),
        ],
    ];
    print_table(
        &format!(
            "DP step time, {P} ranks on System III ({} params, {STEPS} steps)",
            HIDDEN * HIDDEN * LAYERS
        ),
        &["gradient sync", "step ms (virtual)", "speedup"],
        &rows,
    );
    println!(
        "\nAll three schedules produce bitwise-identical parameters; the \
         hierarchical all-reduce shrinks the inter-node ring to one leader \
         per node, and overlap hides the bucket collectives behind backward \
         compute (see the comm tracks in the Chrome trace)."
    );
    println!(
        "\nwall clock (overlapped schedule, fat batch): deterministic \
         {sps_det:.2} steps/s vs fast mode {sps_fast:.2} steps/s \
         ({:.2}x, hardware FMA {}); each mode is bitwise-reproducible \
         across passes, the two modes differ within the DESIGN.md §13 ULP \
         budgets.",
        sps_fast / sps_det,
        if fma { "available" } else { "NOT available" }
    );

    if let Some(path) = trace_arg() {
        write_trace(&world, &path);
    }
}
