//! 1D (Megatron-LM) tensor parallelism: column- and row-parallel linear
//! layers, the parallel MLP of Fig 4, and head-split parallel attention.
//!
//! This is both a feature of Colossal-AI and the *baseline* of every tensor
//! parallelism experiment in the paper ("Megatron-LM tensor parallelism is
//! annotated as 1D").

use colossalai_autograd::{Gelu, Layer, Linear, MultiHeadAttention, Param};
use colossalai_comm::{DeviceCtx, Group};
use colossalai_tensor::ops::sum_axis;
use colossalai_tensor::Tensor;

/// Shards a `[in, out]` weight along its output (column) dimension.
pub fn shard_cols(w: &Tensor, parts: usize, rank: usize) -> Tensor {
    w.chunk(1, parts).swap_remove(rank)
}

/// Shards a `[in, out]` weight along its input (row) dimension.
pub fn shard_rows(w: &Tensor, parts: usize, rank: usize) -> Tensor {
    w.chunk(0, parts).swap_remove(rank)
}

/// Column-parallel linear: `W` split along the output dimension; the input
/// is replicated, each rank computes a slice of the output.
///
/// Forward: no communication (optionally an all-gather when
/// `gather_output`). Backward: one all-reduce of the input gradient.
pub struct ColumnParallelLinear {
    ctx: DeviceCtx,
    group: Group,
    local: Linear,
    gather_output: bool,
    full_out: usize,
}

impl ColumnParallelLinear {
    /// Builds from the *global* weight/bias, which every rank constructs
    /// identically from a shared seed and then shards.
    pub fn from_global(
        ctx: &DeviceCtx,
        group: &Group,
        name: &str,
        w_global: &Tensor,
        b_global: Option<&Tensor>,
        gather_output: bool,
    ) -> Self {
        let p = group.size();
        let r = group.rank();
        let w = shard_cols(w_global, p, r);
        let b = b_global.map(|b| b.chunk(0, p).swap_remove(r));
        ColumnParallelLinear {
            ctx: ctx.clone(),
            group: group.clone(),
            local: Linear::from_parts(name, w, b),
            gather_output,
            full_out: w_global.dims()[1],
        }
    }

    /// Output width of the *local* shard.
    pub fn local_out(&self) -> usize {
        self.local.d_out()
    }
}

impl Layer for ColumnParallelLinear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let y = self.local.forward(x);
        if self.gather_output {
            let dim = y.rank() - 1;
            self.group.all_gather_cat(&self.ctx, y, dim)
        } else {
            y
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let dy_local = if self.gather_output {
            let dim = dy.rank() - 1;
            assert_eq!(*dy.dims().last().unwrap(), self.full_out);
            let each = self.full_out / self.group.size();
            dy.narrow(dim, self.group.rank() * each, each)
        } else {
            dy.clone()
        };
        let dx_partial = self.local.backward(&dy_local);
        // each rank holds the contribution of its column block; the true
        // input gradient is their sum
        self.group.all_reduce(&self.ctx, dx_partial)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.local.visit_params(f);
    }
}

/// Row-parallel linear: `W` split along the input dimension; the input is
/// expected pre-split along its last dimension ("input is parallel", the
/// output of a preceding column-parallel layer), each rank computes a
/// partial full-width output that is all-reduced.
pub struct RowParallelLinear {
    ctx: DeviceCtx,
    group: Group,
    local: Linear,
    /// Bias replicated on every rank and added after the all-reduce (adding
    /// sharded biases before reduction would multiply it by `p`).
    bias: Option<Param>,
    /// When false, the forward narrows a replicated input itself.
    input_is_parallel: bool,
}

impl RowParallelLinear {
    pub fn from_global(
        ctx: &DeviceCtx,
        group: &Group,
        name: &str,
        w_global: &Tensor,
        b_global: Option<&Tensor>,
        input_is_parallel: bool,
    ) -> Self {
        let p = group.size();
        let r = group.rank();
        let w = shard_rows(w_global, p, r);
        RowParallelLinear {
            ctx: ctx.clone(),
            group: group.clone(),
            local: Linear::from_parts(name, w, None),
            bias: b_global.map(|b| Param::new(format!("{name}.bias"), b.clone())),
            input_is_parallel,
        }
    }
}

impl Layer for RowParallelLinear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let x_local = if self.input_is_parallel {
            x.clone()
        } else {
            let dim = x.rank() - 1;
            let each = x.dims()[dim] / self.group.size();
            x.narrow(dim, self.group.rank() * each, each)
        };
        let y_partial = self.local.forward(&x_local);
        let y = self.group.all_reduce(&self.ctx, y_partial);
        match &self.bias {
            Some(b) => y.add_bias(b.value()),
            None => y,
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        if let Some(b) = &mut self.bias {
            let (rows, out) = dy.shape().as_matrix();
            b.accumulate_grad(&sum_axis(&dy.reshape([rows, out]), 0));
        }
        // dy is replicated (it is the gradient of the all-reduced output),
        // so the local weight-shard gradient needs no communication
        let dx_local = self.local.backward(dy);
        if self.input_is_parallel {
            dx_local
        } else {
            let dim = dx_local.rank() - 1;
            self.group.all_gather_cat(&self.ctx, dx_local, dim)
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.local.visit_params(f);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

/// The Megatron parallel MLP of Fig 4: column-parallel up-projection, GELU,
/// row-parallel down-projection. Exactly one all-reduce in forward (the row
/// layer's output) and one in backward (the column layer's input gradient).
pub struct ParallelMlp {
    col: ColumnParallelLinear,
    act: Gelu,
    row: RowParallelLinear,
}

impl ParallelMlp {
    pub fn from_global(
        ctx: &DeviceCtx,
        group: &Group,
        name: &str,
        w1: &Tensor,
        b1: &Tensor,
        w2: &Tensor,
        b2: &Tensor,
    ) -> Self {
        ParallelMlp {
            col: ColumnParallelLinear::from_global(
                ctx,
                group,
                &format!("{name}.fc1"),
                w1,
                Some(b1),
                false,
            ),
            act: Gelu::new(),
            row: RowParallelLinear::from_global(
                ctx,
                group,
                &format!("{name}.fc2"),
                w2,
                Some(b2),
                true,
            ),
        }
    }
}

impl Layer for ParallelMlp {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let h = self.col.forward(x);
        let h = self.act.forward(&h);
        self.row.forward(&h)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let dh = self.row.backward(dy);
        let dh = self.act.backward(&dh);
        self.col.backward(&dh)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.col.visit_params(f);
        self.act.visit_params(f);
        self.row.visit_params(f);
    }
}

/// Head-split parallel attention: Q/K/V projections column-split (each rank
/// owns `heads / p` heads), output projection row-split. Requires
/// `heads % p == 0` — the very restriction that forces Fig 12's 1D baseline
/// onto 4/6/12 GPUs.
pub struct ParallelAttention1d {
    ctx: DeviceCtx,
    group: Group,
    inner: MultiHeadAttention,
    bias_o: Param,
}

impl ParallelAttention1d {
    #[allow(clippy::too_many_arguments)]
    pub fn from_global(
        ctx: &DeviceCtx,
        group: &Group,
        name: &str,
        heads: usize,
        wq: (&Tensor, &Tensor),
        wk: (&Tensor, &Tensor),
        wv: (&Tensor, &Tensor),
        wo: (&Tensor, &Tensor),
        causal: bool,
    ) -> Self {
        let p = group.size();
        let r = group.rank();
        assert_eq!(
            heads % p,
            0,
            "1D tensor parallelism requires heads ({heads}) divisible by the parallel size ({p})"
        );
        let mk_col = |n: &str, (w, b): (&Tensor, &Tensor)| {
            Linear::from_parts(n, shard_cols(w, p, r), Some(b.chunk(0, p).swap_remove(r)))
        };
        let wo_local = Linear::from_parts(&format!("{name}.o"), shard_rows(wo.0, p, r), None);
        ParallelAttention1d {
            ctx: ctx.clone(),
            group: group.clone(),
            inner: MultiHeadAttention::from_parts(
                mk_col(&format!("{name}.q"), wq),
                mk_col(&format!("{name}.k"), wk),
                mk_col(&format!("{name}.v"), wv),
                wo_local,
                heads / p,
                causal,
            ),
            bias_o: Param::new(format!("{name}.o.bias"), wo.1.clone()),
        }
    }
}

impl Layer for ParallelAttention1d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let y_partial = self.inner.forward(x);
        let y = self.group.all_reduce(&self.ctx, y_partial);
        y.add_bias(self.bias_o.value())
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (rows, out) = dy.shape().as_matrix();
        self.bias_o
            .accumulate_grad(&sum_axis(&dy.reshape([rows, out]), 0));
        let dx_partial = self.inner.backward(dy);
        self.group.all_reduce(&self.ctx, dx_partial)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.inner.visit_params(f);
        f(&mut self.bias_o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_comm::World;
    use colossalai_tensor::init;
    use colossalai_topology::systems::system_i;

    /// Builds identical global weights on every rank from a shared seed.
    fn global_linear_weights(d_in: usize, d_out: usize, seed: u64) -> (Tensor, Tensor) {
        let mut rng = init::rng(seed);
        (
            init::lecun_normal(d_in, d_out, &mut rng),
            init::uniform([d_out], -0.1, 0.1, &mut rng),
        )
    }

    #[test]
    fn column_parallel_matches_serial() {
        let (w, b) = global_linear_weights(6, 8, 100);
        let mut rng = init::rng(101);
        let x = init::uniform([3, 6], -1.0, 1.0, &mut rng);
        let dy = init::uniform([3, 8], -1.0, 1.0, &mut rng);

        let mut serial = Linear::from_parts("s", w.clone(), Some(b.clone()));
        let y_want = serial.forward(&x);
        let dx_want = serial.backward(&dy);

        let world = World::new(system_i());
        let results = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let mut l = ColumnParallelLinear::from_global(ctx, &g, "c", &w, Some(&b), true);
            let y = l.forward(&x);
            let dx = l.backward(&dy);
            let mut wg = Vec::new();
            l.visit_params(&mut |p| wg.push(p.grad().clone()));
            (y, dx, wg)
        });
        for (y, dx, wg) in &results {
            assert!(y.allclose(&y_want, 1e-4), "forward diverged");
            assert!(dx.allclose(&dx_want, 1e-4), "input grad diverged");
            // each rank's weight-grad shard equals the serial grad's shard
            let _ = wg;
        }
        // check weight grad shards reassemble the serial weight grad
        let serial_wgrad = serial.weight().grad().clone();
        let shards: Vec<Tensor> = results.iter().map(|(_, _, wg)| wg[0].clone()).collect();
        let reassembled = Tensor::cat(&shards, 1);
        assert!(reassembled.allclose(&serial_wgrad, 1e-4));
    }

    #[test]
    fn row_parallel_matches_serial() {
        let (w, b) = global_linear_weights(8, 6, 102);
        let mut rng = init::rng(103);
        let x = init::uniform([3, 8], -1.0, 1.0, &mut rng);
        let dy = init::uniform([3, 6], -1.0, 1.0, &mut rng);

        let mut serial = Linear::from_parts("s", w.clone(), Some(b.clone()));
        let y_want = serial.forward(&x);
        let dx_want = serial.backward(&dy);

        let world = World::new(system_i());
        let results = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            // feed the replicated input; the layer narrows it itself
            let mut l = RowParallelLinear::from_global(ctx, &g, "r", &w, Some(&b), false);
            let y = l.forward(&x);
            let dx = l.backward(&dy);
            (y, dx)
        });
        for (y, dx) in &results {
            assert!(y.allclose(&y_want, 1e-4), "forward diverged");
            assert!(dx.allclose(&dx_want, 1e-4), "input grad diverged");
        }
    }

    #[test]
    fn parallel_mlp_matches_serial_and_uses_two_allreduces() {
        let h = 8;
        let (w1, b1) = global_linear_weights(h, 4 * h, 104);
        let (w2, b2) = global_linear_weights(4 * h, h, 105);
        let mut rng = init::rng(106);
        let x = init::uniform([2, 3, h], -1.0, 1.0, &mut rng);
        let dy = init::uniform([2, 3, h], -1.0, 1.0, &mut rng);

        // serial reference
        let mut fc1 = Linear::from_parts("fc1", w1.clone(), Some(b1.clone()));
        let mut act = Gelu::new();
        let mut fc2 = Linear::from_parts("fc2", w2.clone(), Some(b2.clone()));
        let y_want = fc2.forward(&act.forward(&fc1.forward(&x)));
        let dx_want = fc1.backward(&act.backward(&fc2.backward(&dy)));

        let world = World::new(system_i());
        let results = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let mut mlp = ParallelMlp::from_global(ctx, &g, "mlp", &w1, &b1, &w2, &b2);
            let y = mlp.forward(&x);
            let dx = mlp.backward(&dy);
            (y, dx)
        });
        for (y, dx) in &results {
            assert!(
                y.allclose(&y_want, 2e-4),
                "forward diverged: {}",
                y.max_abs_diff(&y_want)
            );
            assert!(dx.allclose(&dx_want, 2e-4), "input grad diverged");
        }
        // Megatron property: exactly 2 all-reduces per fwd+bwd
        let stats = world.stats();
        assert_eq!(stats.ops_of(colossalai_comm::OpKind::AllReduce), 2);
    }

    #[test]
    fn parallel_attention_matches_serial() {
        let d = 8;
        let heads = 4;
        let (wq, bq) = global_linear_weights(d, d, 107);
        let (wk, bk) = global_linear_weights(d, d, 108);
        let (wv, bv) = global_linear_weights(d, d, 109);
        let (wo, bo) = global_linear_weights(d, d, 110);
        let mut rng = init::rng(111);
        let x = init::uniform([2, 3, d], -1.0, 1.0, &mut rng);
        let dy = init::uniform([2, 3, d], -1.0, 1.0, &mut rng);

        let mut serial = MultiHeadAttention::from_parts(
            Linear::from_parts("q", wq.clone(), Some(bq.clone())),
            Linear::from_parts("k", wk.clone(), Some(bk.clone())),
            Linear::from_parts("v", wv.clone(), Some(bv.clone())),
            Linear::from_parts("o", wo.clone(), Some(bo.clone())),
            heads,
            false,
        );
        let y_want = serial.forward(&x);
        let dx_want = serial.backward(&dy);

        let world = World::new(system_i());
        for p in [2usize, 4] {
            let results = world.run_on(p, |ctx| {
                let g = ctx.world_group(p);
                let mut attn = ParallelAttention1d::from_global(
                    ctx,
                    &g,
                    "attn",
                    heads,
                    (&wq, &bq),
                    (&wk, &bk),
                    (&wv, &bv),
                    (&wo, &bo),
                    false,
                );
                let y = attn.forward(&x);
                let dx = attn.backward(&dy);
                (y, dx)
            });
            for (y, dx) in &results {
                assert!(y.allclose(&y_want, 2e-4), "p={p} forward diverged");
                assert!(dx.allclose(&dx_want, 2e-4), "p={p} input grad diverged");
            }
        }
    }

    #[test]
    #[should_panic(expected = "device thread panicked")]
    fn attention_rejects_indivisible_heads() {
        let d = 6;
        let (w, b) = global_linear_weights(d, d, 112);
        let world = World::new(system_i());
        world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            // 3 heads over 4 ranks: must panic
            let _ = ParallelAttention1d::from_global(
                ctx,
                &g,
                "attn",
                3,
                (&w, &b),
                (&w, &b),
                (&w, &b),
                (&w, &b),
                false,
            );
        });
    }

    #[test]
    fn one_d_volume_matches_table1_for_forward_allreduce() {
        // The Table 1 "1D" row counts the all-reduce of Y (= S_X elements)
        // in forward and of dX in backward: 2 * [2(p-1)/2 * ...] — our ring
        // meter records 2(p-1)*n per all-reduce, n = S_X, and the MLP does
        // exactly one forward + one backward all-reduce of that size.
        let h = 4;
        let (w1, b1) = global_linear_weights(h, 4 * h, 113);
        let (w2, b2) = global_linear_weights(4 * h, h, 114);
        let b = 2;
        let s = 3;
        let mut rng = init::rng(115);
        let x = init::uniform([b, s, h], -1.0, 1.0, &mut rng);

        let world = World::new(system_i());
        let p = 4;
        world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut mlp = ParallelMlp::from_global(ctx, &g, "mlp", &w1, &b1, &w2, &b2);
            let y = mlp.forward(&x);
            let _ = mlp.backward(&y);
        });
        let sx = (b * s * h) as u64;
        let measured = world
            .stats()
            .elements_of(colossalai_comm::OpKind::AllReduce);
        // 2 all-reduces of S_X elements, each metered at 2(p-1) * S_X:
        // total = 2 * 2(p-1) S_X; Table 1 counts one matmul (fwd+bwd of one
        // W) as 2(p-1) S_X — the MLP has two weight matrices, hence 2x.
        assert_eq!(
            measured,
            2 * crate::volume::volume_1d(crate::volume::MatmulShape { b, s, h }, p)
        );
        assert_eq!(measured, 4 * (p as u64 - 1) * sx);
    }
}
