//! # colossalai-tensor
//!
//! Dense n-dimensional `f32` tensors and the numeric kernels every other
//! crate in the Colossal-AI reproduction builds on: blocked matmul, batched
//! matmul, softmax/layernorm/GELU with analytic backward passes, seeded
//! initializers, and a software IEEE binary16 type for mixed-precision
//! storage emulation.
//!
//! Design choices:
//! * tensors are contiguous and row-major with copy-on-write storage —
//!   clones share one allocation and any mutation path unshares first, so
//!   value semantics are preserved while broadcast-style fan-out of one
//!   buffer to many simulated devices stays O(1) per rank;
//! * shape errors panic (like `ndarray`), since they are programming errors
//!   in a training system, not recoverable conditions;
//! * all randomness is seeded ChaCha8 so parallel-vs-serial equivalence tests
//!   can construct identical global parameters;
//! * real arithmetic runs on a packed, register-blocked GEMM core (see
//!   [`kernel`]) with an opt-in thread budget (`COLOSSAL_KERNEL_THREADS`);
//! * intra-op parallelism (GEMM row panels, element-wise sweeps, row-wise
//!   normalizations) executes on a persistent deterministic worker pool
//!   (see [`par`]) whose partitions depend only on `(len, budget)` — results
//!   are bitwise-identical to serial at any thread count;
//! * an opt-in **fast numeric mode** ([`set_fast_mode`], `COLOSSAL_FAST`,
//!   `compute.fast` in the engine config) swaps the deterministic
//!   mul-then-add kernels for FMA-fused ones and unlocks the bf16-compute
//!   GEMM ([`matmul_bf16`]); results then differ from the default mode by
//!   documented ULP budgets but remain deterministic across thread counts
//!   and backends within the mode (see DESIGN.md §13).

pub mod envknob;
pub mod f16;
pub mod init;
pub mod kernel;
pub mod matmul;
pub mod ops;
pub mod par;
pub mod pool;
pub mod shape;
pub mod tensor;

pub use f16::{BF16, F16};
pub use kernel::{
    fast_mode, fma_available, kernel_threads, par_flop_cutoff, set_fast_mode, set_kernel_threads,
    set_par_flop_cutoff,
};
pub use matmul::{
    bmm, bmm_at, bmm_bt, gemm, matmul, matmul_at, matmul_at_acc, matmul_bf16, matmul_bt, matmul_nd,
    matmul_nd_bf16,
};
pub use par::ParStats;
pub use pool::{pool_enabled, set_pool_enabled, PoolStats};
pub use shape::Shape;
pub use tensor::{axpy_slices, scale_slice, Tensor};
