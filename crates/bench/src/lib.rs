//! # colossalai-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation section. Each `src/bin/*` binary prints the rows/series of
//! one artifact (see DESIGN.md's per-experiment index); the `benches/`
//! directory holds Criterion micro-benchmarks of the underlying kernels.

/// Prints a fixed-width table: a header row and data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats bytes as a human-readable size.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

/// Formats bytes/second as GB/s (decimal, like NCCL reports).
pub fn fmt_bandwidth(bytes_per_sec: f64) -> String {
    format!("{:.1} GB/s", bytes_per_sec / 1e9)
}

/// Parses `--trace <path>` from the process arguments; `Some(path)` asks a
/// bench binary to enable world tracing and export Chrome-trace JSON.
pub fn trace_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            let path = args
                .next()
                .expect("--trace requires an output path (e.g. --trace trace.json)");
            return Some(path);
        }
    }
    None
}

/// Writes the world's recorded trace as Chrome-trace JSON to `path`.
pub fn write_trace(world: &colossalai_comm::World, path: &str) {
    std::fs::write(path, world.trace_json())
        .unwrap_or_else(|e| panic!("cannot write trace to {path}: {e}"));
    eprintln!(
        "wrote Chrome trace ({} spans) to {path}",
        world.trace().len()
    );
}

/// Formats element counts compactly (K/M/G).
pub fn fmt_elements(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}G", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512.00 B");
        assert_eq!(fmt_bytes(1 << 20), "1.00 MiB");
        assert_eq!(fmt_bytes(80 * (1 << 30)), "80.00 GiB");
    }

    #[test]
    fn element_formatting() {
        assert_eq!(fmt_elements(999), "999");
        assert_eq!(fmt_elements(1_500), "1.50K");
        assert_eq!(fmt_elements(2_000_000), "2.00M");
        assert_eq!(fmt_elements(3_000_000_000), "3.00G");
    }

    #[test]
    fn bandwidth_formatting() {
        assert_eq!(fmt_bandwidth(184.0e9), "184.0 GB/s");
    }
}
