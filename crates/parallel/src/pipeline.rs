//! Pipeline parallelism: consecutive layer chunks on consecutive devices,
//! micro-batched GPipe and 1F1B schedules with rematerialization (the GPipe
//! paper's own design: stages keep only micro-batch *inputs* and recompute
//! activations during backward).
//!
//! Activations/gradients move between stages with point-to-point messages;
//! the virtual clock therefore exhibits the real pipeline *bubble*, which
//! the tests check against the classic `(p-1)/(m+p-1)` fraction.

use colossalai_autograd::{Layer, Param};
use colossalai_comm::{DeviceCtx, Span, SpanKind, Track};
use colossalai_tensor::Tensor;
use colossalai_topology::DeviceId;
use std::collections::HashMap;

/// Pipeline schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// All forwards, then all backwards (reverse order).
    GPipe,
    /// One-forward-one-backward steady state: same bubble, far fewer
    /// in-flight micro-batches.
    OneFOneB,
}

/// Ideal bubble fraction of a `p`-stage pipeline running `m` micro-batches.
pub fn bubble_fraction(p: usize, m: usize) -> f64 {
    (p as f64 - 1.0) / (m as f64 + p as f64 - 1.0)
}

/// Bubble fraction of Megatron's *interleaved* schedule with `v` virtual
/// stages (model chunks) per device: the fill shrinks by `1/v` at the cost
/// of `v`x the inter-stage communication. (Listed as related work the
/// paper's schedules build on; exposed for the ablation benches.)
pub fn interleaved_bubble_fraction(p: usize, m: usize, v: usize) -> f64 {
    assert!(v >= 1);
    (p as f64 - 1.0) / (v as f64 * m as f64 + p as f64 - 1.0)
}

/// Evenly partitions `n_layers` among `n_stages` (earlier stages take the
/// remainder), returning `(start, end)` per stage.
pub fn partition_layers(n_layers: usize, n_stages: usize) -> Vec<(usize, usize)> {
    assert!(
        n_stages >= 1 && n_layers >= n_stages,
        "cannot split {n_layers} layers into {n_stages} stages"
    );
    let base = n_layers / n_stages;
    let extra = n_layers % n_stages;
    let mut out = Vec::with_capacity(n_stages);
    let mut start = 0;
    for s in 0..n_stages {
        let len = base + usize::from(s < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

const GRAD_TAG_OFFSET: u64 = 1 << 32;

/// One schedule event reconstructed from the world tracer: what a stage
/// did and when (virtual time).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageEvent {
    /// Micro-batch id.
    pub micro: u64,
    /// True for forward, false for backward.
    pub forward: bool,
    /// Virtual start time (seconds).
    pub start: f64,
    /// Virtual end time (seconds).
    pub end: f64,
}

/// Extracts `rank`'s pipeline compute events from a shared-tracer snapshot
/// (the `F{micro}` / `B{micro}` spans recorded by [`PipelineStage`]),
/// ordered by virtual start time.
pub fn stage_events(spans: &[Span], rank: DeviceId) -> Vec<StageEvent> {
    let mut out: Vec<StageEvent> = spans
        .iter()
        .filter(|s| s.track == Track::Device(rank))
        .filter_map(|s| {
            let SpanKind::Compute { label } = &s.kind else {
                return None;
            };
            let (forward, digits) = match (label.strip_prefix('F'), label.strip_prefix('B')) {
                (Some(d), _) => (true, d),
                (_, Some(d)) => (false, d),
                _ => return None,
            };
            let micro = digits.parse().ok()?;
            Some(StageEvent {
                micro,
                forward,
                start: s.start,
                end: s.end,
            })
        })
        .collect();
    out.sort_by(|a, b| a.start.total_cmp(&b.start));
    out
}

/// The last stage's loss callback: `(micro_batch, output) -> (loss, dOutput)`.
pub type LossFn<'a> = &'a mut dyn FnMut(u64, &Tensor) -> (f32, Tensor);

/// One device's pipeline stage.
pub struct PipelineStage<M: Layer> {
    ctx: DeviceCtx,
    layers: M,
    stage: usize,
    n_stages: usize,
    prev: Option<DeviceId>,
    next: Option<DeviceId>,
    /// Seconds of modeled compute per micro-batch forward (backward is
    /// charged at 2x). Zero disables compute charging.
    pub micro_forward_seconds: f64,
    saved_inputs: HashMap<u64, Tensor>,
    saved_outputs: HashMap<u64, Tensor>,
    /// Peak number of in-flight micro-batches (the schedule's activation
    /// memory footprint).
    pub peak_in_flight: usize,
}

impl<M: Layer> PipelineStage<M> {
    /// Builds the stage for device `devices[stage]`; `devices` lists the
    /// pipeline order.
    pub fn new(ctx: &DeviceCtx, devices: &[DeviceId], layers: M) -> Self {
        let stage = devices
            .iter()
            .position(|&d| d == ctx.rank())
            .expect("calling device not in pipeline");
        PipelineStage {
            ctx: ctx.clone(),
            layers,
            stage,
            n_stages: devices.len(),
            prev: (stage > 0).then(|| devices[stage - 1]),
            next: (stage + 1 < devices.len()).then(|| devices[stage + 1]),
            micro_forward_seconds: 0.0,
            saved_inputs: HashMap::new(),
            saved_outputs: HashMap::new(),
            peak_in_flight: 0,
        }
    }

    /// Stage index.
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// True for the first stage (feeds data).
    pub fn is_first(&self) -> bool {
        self.stage == 0
    }

    /// True for the last stage (computes the loss).
    pub fn is_last(&self) -> bool {
        self.stage + 1 == self.n_stages
    }

    /// The wrapped layer stack.
    pub fn layers_mut(&mut self) -> &mut M {
        &mut self.layers
    }

    fn forward_micro(&mut self, micro: u64, input: Option<&Tensor>) {
        let x = match (self.prev, input) {
            (None, Some(x)) => x.clone(),
            (Some(prev), None) => self.ctx.recv(prev, micro),
            _ => panic!("stage {} given wrong input source", self.stage),
        };
        if self.micro_forward_seconds > 0.0 {
            let start = self.ctx.clock();
            self.ctx.charge_seconds(self.micro_forward_seconds);
            if self.ctx.tracing() {
                self.ctx.trace_span(
                    SpanKind::Compute {
                        label: format!("F{micro}"),
                    },
                    start,
                );
            }
        }
        let y = self.layers.forward(&x);
        self.saved_inputs.insert(micro, x);
        self.peak_in_flight = self.peak_in_flight.max(self.saved_inputs.len());
        if let Some(next) = self.next {
            self.ctx.send(next, micro, y);
        } else {
            self.saved_outputs.insert(micro, y);
        }
    }

    /// `loss_dy` carries the last stage's `(loss, dOutput)` computed by the
    /// caller from the saved output; inner stages pass `None` and receive
    /// their upstream gradient from the next stage.
    fn backward_micro(&mut self, micro: u64, loss_dy: Option<(f32, Tensor)>) -> f32 {
        let (loss, dy) = if let Some(next) = self.next {
            (0.0, self.ctx.recv(next, GRAD_TAG_OFFSET + micro))
        } else {
            loss_dy.expect("last stage requires a loss gradient")
        };
        let x = self
            .saved_inputs
            .remove(&micro)
            .expect("backward before forward for this micro-batch");
        // rematerialize (GPipe-style) then walk back
        if self.micro_forward_seconds > 0.0 {
            // recompute + backward: ~2x a forward, plus the rematerialized
            // forward itself
            let start = self.ctx.clock();
            self.ctx.charge_seconds(3.0 * self.micro_forward_seconds);
            if self.ctx.tracing() {
                self.ctx.trace_span(
                    SpanKind::Compute {
                        label: format!("B{micro}"),
                    },
                    start,
                );
            }
        }
        let _ = self.layers.forward(&x);
        let dx = self.layers.backward(&dy);
        if let Some(prev) = self.prev {
            self.ctx.send(prev, GRAD_TAG_OFFSET + micro, dx);
        }
        loss
    }

    /// Runs one training step of `m` micro-batches under `schedule`.
    ///
    /// * first stage: `inputs` supplies the `m` micro-batch tensors;
    /// * last stage: `loss_fn(micro, output) -> (loss, dOutput)`;
    /// * returns the mean micro-batch loss on the last stage, 0 elsewhere.
    ///
    /// Parameter gradients accumulate across micro-batches; callers step the
    /// optimizer afterwards.
    pub fn run_step(
        &mut self,
        schedule: Schedule,
        inputs: Option<&[Tensor]>,
        mut loss_fn: Option<LossFn<'_>>,
        m: usize,
    ) -> f32 {
        assert!(m >= 1, "need at least one micro-batch");
        if self.is_first() {
            assert_eq!(
                inputs.map(<[Tensor]>::len),
                Some(m),
                "first stage needs m inputs"
            );
        }
        let input_at = |i: usize, inputs: Option<&[Tensor]>| inputs.map(|xs| xs[i].clone());
        let mut total_loss = 0.0;
        // the last stage computes (loss, dOutput) from its saved output
        // before entering backward_micro
        macro_rules! bwd {
            ($i:expr) => {{
                let micro = $i as u64;
                let loss_dy = if self.is_last() {
                    let out = self
                        .saved_outputs
                        .remove(&micro)
                        .expect("backward before forward for this micro-batch");
                    let f = loss_fn
                        .as_mut()
                        .expect("last stage requires a loss function");
                    Some(f(micro, &out))
                } else {
                    None
                };
                total_loss += self.backward_micro(micro, loss_dy);
            }};
        }
        match schedule {
            Schedule::GPipe => {
                for i in 0..m {
                    let x = input_at(i, inputs);
                    self.forward_micro(i as u64, x.as_ref());
                }
                for i in (0..m).rev() {
                    bwd!(i);
                }
            }
            Schedule::OneFOneB => {
                let warmup = (self.n_stages - 1 - self.stage).min(m);
                for i in 0..warmup {
                    let x = input_at(i, inputs);
                    self.forward_micro(i as u64, x.as_ref());
                }
                for i in 0..m - warmup {
                    let x = input_at(warmup + i, inputs);
                    self.forward_micro((warmup + i) as u64, x.as_ref());
                    bwd!(i);
                }
                for i in m - warmup..m {
                    bwd!(i);
                }
            }
        }
        total_loss / m as f32
    }
}

impl<M: Layer> Layer for PipelineStage<M> {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.layers.forward(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.layers.backward(dy)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.layers.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_autograd::{Gelu, Linear, Sequential};
    use colossalai_comm::World;
    use colossalai_tensor::init;
    use colossalai_tensor::ops::cross_entropy;
    use colossalai_topology::systems::system_i;

    /// A 4-layer MLP split into `n_stages` chunks; every rank builds the
    /// full model from the same seed and keeps its slice.
    fn full_layers(seed: u64) -> Vec<Box<dyn Layer>> {
        let mut rng = init::rng(seed);
        vec![
            Box::new(Linear::from_rng("l0", 4, 8, true, &mut rng)),
            Box::new(Gelu::new()),
            Box::new(Linear::from_rng("l1", 8, 8, true, &mut rng)),
            Box::new(Linear::from_rng("l2", 8, 3, true, &mut rng)),
        ]
    }

    fn stage_slice(seed: u64, n_stages: usize, stage: usize) -> Sequential {
        let mut all = full_layers(seed);
        let parts = partition_layers(all.len(), n_stages);
        let (start, end) = parts[stage];
        // drain preserves order; take the slice for this stage
        let tail = all.split_off(start);
        let mut tail = tail;
        let rest = tail.split_off(end - start);
        drop(rest);
        drop(all);
        Sequential::new(tail)
    }

    fn serial_reference(
        seed: u64,
        micros: &[Tensor],
        targets: &[Vec<usize>],
    ) -> (f32, Vec<Tensor>) {
        let mut model = Sequential::new(full_layers(seed));
        let mut loss_sum = 0.0;
        for (x, t) in micros.iter().zip(targets) {
            let logits = model.forward(x);
            let (loss, dlogits) = cross_entropy(&logits, t);
            loss_sum += loss;
            let _ = model.backward(&dlogits);
        }
        let mut grads = Vec::new();
        model.visit_params(&mut |p| grads.push(p.grad().clone()));
        (loss_sum / micros.len() as f32, grads)
    }

    fn run_schedule(schedule: Schedule, p: usize, m: usize) -> (f32, Vec<Tensor>, Vec<usize>) {
        let seed = 1234;
        let mut rng = init::rng(77);
        let micros: Vec<Tensor> = (0..m)
            .map(|_| init::uniform([2, 4], -1.0, 1.0, &mut rng))
            .collect();
        let targets: Vec<Vec<usize>> = (0..m).map(|i| vec![i % 3, (i + 1) % 3]).collect();

        let world = World::new(system_i());
        let targets2 = targets.clone();
        let micros2 = micros.clone();
        let results = world.run_on(p, |ctx| {
            let devices: Vec<usize> = (0..p).collect();
            let mut stage = PipelineStage::new(ctx, &devices, stage_slice(seed, p, ctx.rank()));
            let mut lf = |micro: u64, out: &Tensor| {
                let (loss, d) = cross_entropy(out, &targets2[micro as usize]);
                (loss, d)
            };
            let loss = stage.run_step(
                schedule,
                stage.is_first().then_some(&micros2[..]),
                stage
                    .is_last()
                    .then_some(&mut lf as &mut dyn FnMut(u64, &Tensor) -> (f32, Tensor)),
                m,
            );
            let mut grads = Vec::new();
            stage.visit_params(&mut |pp| grads.push(pp.grad().clone()));
            (loss, grads, stage.peak_in_flight)
        });
        // losses: only last stage reports
        let loss = results[p - 1].0;
        // concatenate stage grads in stage order = serial param order
        let grads: Vec<Tensor> = results.iter().flat_map(|(_, g, _)| g.clone()).collect();
        let peaks: Vec<usize> = results.iter().map(|&(_, _, pk)| pk).collect();
        let (want_loss, want_grads) = serial_reference(seed, &micros, &targets);
        assert!(
            (loss - want_loss).abs() < 1e-5,
            "loss {loss} vs {want_loss}"
        );
        assert_eq!(grads.len(), want_grads.len());
        for (g, w) in grads.iter().zip(&want_grads) {
            assert!(g.allclose(w, 1e-4), "grad diff {}", g.max_abs_diff(w));
        }
        (loss, grads, peaks)
    }

    #[test]
    fn gpipe_matches_serial_2_stages() {
        run_schedule(Schedule::GPipe, 2, 4);
    }

    #[test]
    fn gpipe_matches_serial_3_stages() {
        run_schedule(Schedule::GPipe, 3, 5);
    }

    #[test]
    fn one_f_one_b_matches_serial() {
        run_schedule(Schedule::OneFOneB, 2, 4);
        run_schedule(Schedule::OneFOneB, 3, 6);
    }

    #[test]
    fn one_f_one_b_has_lower_peak_memory() {
        let (_, _, gpipe_peaks) = run_schedule(Schedule::GPipe, 3, 6);
        let (_, _, fb_peaks) = run_schedule(Schedule::OneFOneB, 3, 6);
        // GPipe's first stage holds all m micro-batches; 1F1B holds at most
        // the pipeline depth
        assert_eq!(gpipe_peaks[0], 6);
        assert!(fb_peaks[0] <= 3, "1F1B peak {} too high", fb_peaks[0]);
    }

    #[test]
    fn schedules_produce_matching_gradients() {
        // GPipe drains micro-batches in reverse, 1F1B in FIFO order, so
        // float accumulation order differs — equal up to rounding
        let (_, g1, _) = run_schedule(Schedule::GPipe, 3, 6);
        let (_, g2, _) = run_schedule(Schedule::OneFOneB, 3, 6);
        for (a, b) in g1.iter().zip(&g2) {
            assert!(
                a.allclose(b, 1e-5),
                "schedules disagree by {}",
                a.max_abs_diff(b)
            );
        }
    }

    #[test]
    fn bubble_fraction_formula() {
        assert!((bubble_fraction(4, 1) - 0.75).abs() < 1e-12);
        assert!((bubble_fraction(4, 12) - 3.0 / 15.0).abs() < 1e-12);
        assert!(bubble_fraction(4, 1000) < 0.01);
    }

    #[test]
    fn interleaving_shrinks_the_bubble() {
        // v = 1 degenerates to the plain formula; more chunks, less bubble
        assert_eq!(interleaved_bubble_fraction(4, 8, 1), bubble_fraction(4, 8));
        assert!(interleaved_bubble_fraction(4, 8, 2) < bubble_fraction(4, 8));
        assert!(interleaved_bubble_fraction(4, 8, 4) < interleaved_bubble_fraction(4, 8, 2));
    }

    #[test]
    fn virtual_time_shows_pipeline_bubble() {
        // charge 1 ms per micro forward; the last stage's clock should be
        // close to ideal_time = (m + p - 1) * t_fwd + m * 3 t_fwd-ish
        let p = 4;
        let m = 8;
        let t_fwd = 1e-3;
        let seed = 555;
        let mut rng = init::rng(78);
        let micros: Vec<Tensor> = (0..m)
            .map(|_| init::uniform([2, 4], -1.0, 1.0, &mut rng))
            .collect();
        let targets: Vec<Vec<usize>> = (0..m).map(|i| vec![i % 3, (i + 1) % 3]).collect();
        let world = World::new(system_i());
        let clocks = world.run_on(p, |ctx| {
            let devices: Vec<usize> = (0..p).collect();
            let mut stage = PipelineStage::new(ctx, &devices, stage_slice(seed, p, ctx.rank()));
            stage.micro_forward_seconds = t_fwd;
            let mut lf = |micro: u64, out: &Tensor| cross_entropy(out, &targets[micro as usize]);
            let _ = stage.run_step(
                Schedule::GPipe,
                stage.is_first().then_some(&micros[..]),
                stage
                    .is_last()
                    .then_some(&mut lf as &mut dyn FnMut(u64, &Tensor) -> (f32, Tensor)),
                m,
            );
            ctx.clock()
        });
        let step_time = clocks.iter().cloned().fold(0.0, f64::max);
        // per-device work: m micros * (1 fwd + 3 bwd-equivalent) = 4m t_fwd;
        // pipeline fill adds ~(p-1) * (1 + 3) t_fwd
        let ideal = (4 * m) as f64 * t_fwd;
        let with_bubble = ideal + 4.0 * (p as f64 - 1.0) * t_fwd;
        assert!(
            step_time >= ideal && step_time < with_bubble * 1.3,
            "step {step_time} vs ideal {ideal} / bubble bound {with_bubble}"
        );
        // and more micro-batches shrink the *relative* bubble
        assert!(step_time / ideal < 1.0 + 1.5 * bubble_fraction(p, m));
    }

    #[test]
    fn shared_tracer_reconstructs_schedule() {
        // the gantt view is now derived from the world tracer; per stage it
        // must see m forward + m backward compute segments with the charged
        // durations, non-overlapping in virtual time
        let p = 3;
        let m = 4;
        let t_fwd = 1e-3;
        let seed = 555;
        let mut rng = init::rng(79);
        let micros: Vec<Tensor> = (0..m)
            .map(|_| init::uniform([2, 4], -1.0, 1.0, &mut rng))
            .collect();
        let targets: Vec<Vec<usize>> = (0..m).map(|i| vec![i % 3, (i + 1) % 3]).collect();
        let world = World::new(system_i());
        world.enable_tracing();
        world.run_on(p, |ctx| {
            let devices: Vec<usize> = (0..p).collect();
            let mut stage = PipelineStage::new(ctx, &devices, stage_slice(seed, p, ctx.rank()));
            stage.micro_forward_seconds = t_fwd;
            let mut lf = |micro: u64, out: &Tensor| cross_entropy(out, &targets[micro as usize]);
            let _ = stage.run_step(
                Schedule::OneFOneB,
                stage.is_first().then_some(&micros[..]),
                stage
                    .is_last()
                    .then_some(&mut lf as &mut dyn FnMut(u64, &Tensor) -> (f32, Tensor)),
                m,
            );
        });
        let spans = world.trace();
        for rank in 0..p {
            let ev = stage_events(&spans, rank);
            assert_eq!(ev.len(), 2 * m, "rank {rank}: {ev:?}");
            assert_eq!(ev.iter().filter(|e| e.forward).count(), m);
            for w in ev.windows(2) {
                assert!(w[1].start >= w[0].end - 1e-12, "rank {rank} overlaps");
            }
            for e in &ev {
                let want = if e.forward { t_fwd } else { 3.0 * t_fwd };
                assert!(
                    (e.end - e.start - want).abs() < 1e-12,
                    "rank {rank} event {e:?}"
                );
            }
        }
    }

    #[test]
    fn partition_layers_covers_all() {
        assert_eq!(partition_layers(4, 2), vec![(0, 2), (2, 4)]);
        assert_eq!(partition_layers(5, 3), vec![(0, 2), (2, 4), (4, 5)]);
        assert_eq!(partition_layers(3, 3), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn partition_rejects_more_stages_than_layers() {
        partition_layers(2, 3);
    }
}
