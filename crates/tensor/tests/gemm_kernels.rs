//! Property tests for the packed GEMM core: every routed variant (plain,
//! transposed, batched, threaded) must agree with a naive triple loop on
//! arbitrary shapes — including degenerate ones (`1 x N`, `N x 1`, zero-size
//! dims) and sizes that straddle the microtile and cache-block boundaries.

use colossalai_tensor::kernel::{self, gemm_mat, gemm_mat_threaded, Mat};
use colossalai_tensor::{bmm, bmm_at, bmm_bt, matmul, matmul_at, matmul_bt, Tensor};
use proptest::prelude::*;

/// Dimension menu biased toward the edges the kernel has to get right:
/// degenerate sizes, the microtile extents `MR`/`NR` and straddlers of both.
const DIMS: &[usize] = &[
    0,
    1,
    2,
    kernel::MR - 1,
    kernel::MR,
    kernel::MR + 1,
    kernel::NR - 1,
    kernel::NR,
    kernel::NR + 1,
    31,
    33,
];

/// Inner-dimension menu; kept moderate so the naive reference stays fast in
/// debug builds (the `KC`/`MC`/`NC` straddlers are covered by the unit tests
/// in `kernel.rs`).
const KDIMS: &[usize] = &[0, 1, 2, kernel::MR + 1, kernel::NR + 1, 40];

fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

fn rand_t(dims: impl Into<colossalai_tensor::Shape>, seed: u64) -> Tensor {
    let mut rng = colossalai_tensor::init::rng(seed);
    colossalai_tensor::init::uniform(dims, -2.0, 2.0, &mut rng)
}

fn tol(k: usize) -> f32 {
    1e-4 * (k.max(1) as f32)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn packed_gemm_matches_naive(mi in 0usize..11, ki in 0usize..6, ni in 0usize..11, seed in 0u64..1000) {
        let (m, k, n) = (DIMS[mi], KDIMS[ki], DIMS[ni]);
        let a = rand_t([m, k], seed);
        let b = rand_t([k, n], seed + 1);
        let mut c = vec![0.0f32; m * n];
        gemm_mat(Mat::row_major(a.data(), k), Mat::row_major(b.data(), n), &mut c, m, k, n);
        let want = naive(a.data(), b.data(), m, k, n);
        for (got, want) in c.iter().zip(&want) {
            prop_assert!((got - want).abs() <= tol(k), "({m},{k},{n}): {got} vs {want}");
        }
    }

    #[test]
    fn threaded_gemm_is_bitwise_serial(
        mi in 0usize..11, ki in 0usize..6, ni in 0usize..11,
        threads in 2usize..6, seed in 0u64..1000,
    ) {
        let (m, k, n) = (DIMS[mi], KDIMS[ki], DIMS[ni]);
        let a = rand_t([m, k], seed);
        let b = rand_t([k, n], seed + 2);
        let mut serial = vec![0.0f32; m * n];
        gemm_mat(Mat::row_major(a.data(), k), Mat::row_major(b.data(), n), &mut serial, m, k, n);
        let mut par = vec![0.0f32; m * n];
        gemm_mat_threaded(
            Mat::row_major(a.data(), k), Mat::row_major(b.data(), n),
            &mut par, m, k, n, threads,
        );
        prop_assert_eq!(serial, par);
    }

    #[test]
    fn transposed_variants_match_materialized(mi in 0usize..11, ki in 0usize..6, ni in 0usize..11, seed in 0u64..1000) {
        // matmul_bt / matmul_at feed strided views into the packed kernel;
        // they must agree with explicitly transposing first
        let (m, k, n) = (DIMS[mi].max(1), KDIMS[ki].max(1), DIMS[ni].max(1));
        let a = rand_t([m, k], seed);
        let bt = rand_t([n, k], seed + 3);
        prop_assert!(matmul_bt(&a, &bt).allclose(&matmul(&a, &bt.transpose()), tol(k)));
        let at = rand_t([k, m], seed + 4);
        let b = rand_t([k, n], seed + 5);
        prop_assert!(matmul_at(&at, &b).allclose(&matmul(&at.transpose(), &b), tol(k)));
    }

    #[test]
    fn batched_variants_match_per_batch(
        ba in 1usize..4, mi in 0usize..11, ki in 0usize..6, ni in 0usize..11, seed in 0u64..1000,
    ) {
        let (m, k, n) = (DIMS[mi].max(1), KDIMS[ki].max(1), DIMS[ni].max(1));
        let a = rand_t([ba, m, k], seed);
        let b = rand_t([ba, k, n], seed + 6);
        let c = bmm(&a, &b);
        for t in 0..ba {
            let at = a.narrow(0, t, 1).reshaped([m, k]);
            let bt = b.narrow(0, t, 1).reshaped([k, n]);
            let ct = c.narrow(0, t, 1).reshaped([m, n]);
            prop_assert!(ct.allclose(&matmul(&at, &bt), tol(k)), "batch {t} of ({ba},{m},{k},{n})");
        }
        let b_t = rand_t([ba, n, k], seed + 7);
        prop_assert!(bmm_bt(&a, &b_t).allclose(&bmm(&a, &b_t.permute(&[0, 2, 1])), tol(k)));
        let a_t = rand_t([ba, k, m], seed + 8);
        prop_assert!(bmm_at(&a_t, &b).allclose(&bmm(&a_t.permute(&[0, 2, 1]), &b), tol(k)));
    }

    #[test]
    fn gemm_accumulation_contract(mi in 0usize..11, ki in 0usize..6, ni in 0usize..11, seed in 0u64..1000) {
        // C += A@B on a non-zero C: running twice must add exactly twice
        let (m, k, n) = (DIMS[mi], KDIMS[ki], DIMS[ni]);
        let a = rand_t([m, k], seed);
        let b = rand_t([k, n], seed + 9);
        let mut once = vec![0.0f32; m * n];
        colossalai_tensor::gemm(a.data(), b.data(), &mut once, m, k, n);
        let mut twice = once.clone();
        colossalai_tensor::gemm(a.data(), b.data(), &mut twice, m, k, n);
        for (o, t) in once.iter().zip(&twice) {
            prop_assert!((t - 2.0 * o).abs() <= tol(k));
        }
    }
}
