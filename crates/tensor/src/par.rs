//! Persistent, deterministic intra-op parallel runtime.
//!
//! Before this module, the only intra-op parallelism in the workspace was
//! the row-panel GEMM split — and it paid a fresh `std::thread::scope`
//! spawn (stack mmap + clone + join) on **every** threaded GEMM call, while
//! every element-wise, normalization and optimizer kernel ran serial. This
//! module replaces per-call spawning with one lazily-initialized,
//! process-global pool of parked worker threads that every kernel shares.
//!
//! # Determinism contract
//!
//! The repo-wide arithmetic-equivalence contract (serial == DP == TP ==
//! ZeRO, bitwise) extends to thread count: **results never depend on the
//! thread budget or on scheduling**. The pool guarantees this structurally:
//!
//! * [`partition`] derives chunk boundaries from `(len, budget, min_chunk)`
//!   only — never from timing, queue depth or worker count at runtime;
//! * each chunk is processed by exactly one executor running the exact
//!   serial code over that chunk, and chunks are disjoint;
//! * every parallelized kernel is element-independent (map/zip/optimizer)
//!   or row-independent (softmax/layernorm), or — for the rank-ordered
//!   collective reductions — keeps the per-element accumulation order
//!   fixed while splitting *across* elements.
//!
//! Which OS thread executes which chunk is decided by an atomic ticket and
//! *does* vary run to run; since chunks are disjoint and the per-chunk code
//! is pure, that never changes a single bit.
//!
//! # Scheduling
//!
//! Workers park on a condvar and wake when a job is published to the shared
//! slot; chunk indices are handed out by `fetch_add` so an early-finishing
//! worker simply grabs the next chunk. The *submitting* thread always
//! participates (it is one of the `budget` executors), so a job can finish
//! even if every worker is busy elsewhere. One job runs at a time: a
//! submitter that finds the pool busy — e.g. 16 simulated-device rank
//! threads all hitting a big kernel at once — falls back to running its
//! chunks serially inline, which is (a) bitwise-identical by the contract
//! above, (b) deadlock-free by construction (nobody ever blocks waiting for
//! a slot), and (c) the right call on an oversubscribed host anyway.
//! Nested submissions from inside a pool task hit the same path and run
//! serially.
//!
//! The inline fallback is a policy, not a necessity: with
//! [`set_contention_wait`]`(true)` (or `COLOSSAL_PAR_CONTENTION=wait`) a
//! contended submitter blocks for the pool instead — the right trade when
//! only a handful of rank tasks run at once, as under the `comm` crate's
//! event-driven world scheduler. Nested submissions always inline
//! regardless of policy (waiting for a pool you are part of deadlocks).
//!
//! # Budget
//!
//! The executor budget is [`crate::kernel_threads`] — `set_kernel_threads`
//! / `COLOSSAL_KERNEL_THREADS`, 0 clamping to 1 (see the resolution rules
//! documented there). At budget 1 every entry point degrades to the plain
//! serial loop with no pool interaction at all. `COLOSSAL_PAR=off` (or
//! [`set_enabled`]`(false)`) disables the persistent pool at runtime, which
//! also flips threaded GEMM back to its legacy spawn-per-call path — that
//! is the baseline leg of the `par_runtime` bench.
//!
//! Small tensors stay serial: callers gate on [`par_eligible`], whose
//! element cutoff is `compute.par_cutoff` / `COLOSSAL_PAR_CUTOFF` /
//! [`set_par_cutoff`] (default [`DEFAULT_PAR_CUTOFF`]).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, TryLockError};

/// Default element cutoff below which parallelized element-wise kernels
/// stay serial: under ~32Ki elements the wake/join round-trip costs more
/// than the sweep itself.
pub const DEFAULT_PAR_CUTOFF: usize = 32 * 1024;

/// Default minimum chunk granularity (elements) for [`par_chunks_static`]
/// callers that have no natural unit of their own.
pub const MIN_CHUNK: usize = 4096;

/// Hard cap on spawned workers, a backstop against absurd budgets; the
/// effective helper count is `min(budget - 1, tasks - 1, MAX_WORKERS)`.
pub const MAX_WORKERS: usize = 64;

// -------------------------------------------------------------------------
// Runtime knobs
// -------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);
static PAR_CUTOFF: AtomicUsize = AtomicUsize::new(0);
/// Contended-submitter policy: 0 = unset (consult the env), 1 = inline,
/// 2 = wait.
static CONTENTION: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on pool worker threads (always) and on a submitting thread
    /// while it holds the pool — a nested `run_tasks` from either must
    /// inline, never wait, or the pool would deadlock on itself.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn env_contention_wait() -> bool {
    static WAIT: OnceLock<bool> = OnceLock::new();
    *WAIT.get_or_init(|| match std::env::var("COLOSSAL_PAR_CONTENTION") {
        Err(_) => false,
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "wait" => true,
            "inline" => false,
            other => {
                crate::envknob::warn_invalid(
                    "COLOSSAL_PAR_CONTENTION",
                    other,
                    "\"wait\" or \"inline\"",
                    "inline",
                );
                false
            }
        },
    })
}

/// Chooses what a submitter does when another thread holds the pool:
/// `false` (the default) runs its chunks serially inline; `true` blocks for
/// the pool. Waiting trades submitter latency for worker utilization —
/// worthwhile when a few big rank tasks contend (the scheduler backend's
/// small pools), wasteful when dozens do (the legacy thread-per-rank mode,
/// which is why inline remains the default). Results are bitwise identical
/// either way.
pub fn set_contention_wait(on: bool) {
    CONTENTION.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The effective contended-submitter policy: the last
/// [`set_contention_wait`] call, else `COLOSSAL_PAR_CONTENTION=wait`, else
/// inline.
pub fn contention_wait() -> bool {
    match CONTENTION.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_contention_wait(),
    }
}

fn env_forced_off() -> bool {
    static OFF: OnceLock<bool> = OnceLock::new();
    *OFF.get_or_init(|| match std::env::var("COLOSSAL_PAR") {
        Err(_) => false,
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "false" => true,
            "on" | "1" | "true" => false,
            other => {
                crate::envknob::warn_invalid("COLOSSAL_PAR", other, "on/off", "on");
                false
            }
        },
    })
}

/// Whether the persistent pool backend is active. `COLOSSAL_PAR=off` wins
/// over any runtime [`set_enabled`] call (read once, like `COLOSSAL_POOL`).
pub fn enabled() -> bool {
    !env_forced_off() && ENABLED.load(Ordering::Relaxed)
}

/// Turns the persistent pool backend on or off at runtime. Off means every
/// [`run_tasks`] call executes serially inline (bitwise-identical) and the
/// GEMM auto-dispatch reverts to spawn-per-call threading — the baseline
/// configuration of the `par_runtime` bench.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Sets the element cutoff for [`par_eligible`] (clamped to at least 1,
/// like every knob in this crate — see [`crate::kernel_threads`]).
pub fn set_par_cutoff(n: usize) {
    PAR_CUTOFF.store(n.max(1), Ordering::Relaxed);
}

/// The element cutoff below which parallelized kernels stay serial: the
/// last [`set_par_cutoff`] value, else `COLOSSAL_PAR_CUTOFF`, else
/// [`DEFAULT_PAR_CUTOFF`]. Cached on first resolution (the same rules as
/// [`crate::kernel_threads`], documented there).
pub fn par_cutoff() -> usize {
    crate::kernel::resolve_cached(&PAR_CUTOFF, "COLOSSAL_PAR_CUTOFF", DEFAULT_PAR_CUTOFF)
}

/// True when a kernel over `numel` elements should take its parallel path:
/// the pool backend is on, the thread budget exceeds 1 and the tensor is
/// at least [`par_cutoff`] elements. Callers keep their original serial
/// loop for the `false` case, so small tensors pay zero overhead.
#[inline]
pub fn par_eligible(numel: usize) -> bool {
    numel >= par_cutoff() && crate::kernel::kernel_threads() > 1 && enabled()
}

// -------------------------------------------------------------------------
// Stats (busy/idle counters surfaced as `par_util%` in the trace rollup)
// -------------------------------------------------------------------------

static JOBS: AtomicU64 = AtomicU64::new(0);
static SERIAL_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static CONTENDED_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static CONTENDED_WAITS: AtomicU64 = AtomicU64::new(0);
/// Busy counter: task units executed by pool workers.
static TASKS_ON_WORKERS: AtomicU64 = AtomicU64::new(0);
/// Total task units submitted (pooled + serial); `total - on_workers` is
/// the idle-pool share (units the submitting threads ran themselves).
static TASKS_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the pool's atomic busy/idle counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Jobs executed through the worker pool.
    pub jobs: u64,
    /// `run_tasks` calls that ran serially (budget 1, single task, or
    /// backend disabled).
    pub serial_fallbacks: u64,
    /// `run_tasks` calls that ran serially because another thread held the
    /// pool (e.g. two rank threads hitting big kernels simultaneously).
    pub contended_fallbacks: u64,
    /// `run_tasks` calls that blocked for a contended pool instead of
    /// inlining (the [`set_contention_wait`] policy).
    pub contended_waits: u64,
    /// Task units executed by pool workers (the busy counter).
    pub tasks_on_workers: u64,
    /// Task units submitted in total (pooled and serial paths).
    pub tasks_total: u64,
    /// Worker threads spawned so far (they park forever once idle).
    pub workers: usize,
}

impl ParStats {
    /// Pool utilization: the share of submitted task units that pool
    /// workers (rather than the submitting threads) executed. 0 when
    /// everything ran serially; approaches `(budget-1)/budget` when the
    /// pool absorbs every eligible kernel.
    pub fn util(&self) -> f64 {
        if self.tasks_total == 0 {
            0.0
        } else {
            self.tasks_on_workers as f64 / self.tasks_total as f64
        }
    }

    /// One-line human-readable summary (rollup-table footer).
    pub fn summary(&self) -> String {
        format!(
            "jobs={} serial={} contended={} waited={} worker_tasks={}/{} ({:.1}% util) workers={}",
            self.jobs,
            self.serial_fallbacks,
            self.contended_fallbacks,
            self.contended_waits,
            self.tasks_on_workers,
            self.tasks_total,
            self.util() * 100.0,
            self.workers
        )
    }
}

/// Current counter snapshot.
pub fn stats() -> ParStats {
    ParStats {
        jobs: JOBS.load(Ordering::Relaxed),
        serial_fallbacks: SERIAL_FALLBACKS.load(Ordering::Relaxed),
        contended_fallbacks: CONTENDED_FALLBACKS.load(Ordering::Relaxed),
        contended_waits: CONTENDED_WAITS.load(Ordering::Relaxed),
        tasks_on_workers: TASKS_ON_WORKERS.load(Ordering::Relaxed),
        tasks_total: TASKS_TOTAL.load(Ordering::Relaxed),
        workers: shared().workers.load(Ordering::Relaxed),
    }
}

/// Zeroes the counters (benchmarks call this between phases).
pub fn reset_stats() {
    JOBS.store(0, Ordering::Relaxed);
    SERIAL_FALLBACKS.store(0, Ordering::Relaxed);
    CONTENDED_FALLBACKS.store(0, Ordering::Relaxed);
    CONTENDED_WAITS.store(0, Ordering::Relaxed);
    TASKS_ON_WORKERS.store(0, Ordering::Relaxed);
    TASKS_TOTAL.store(0, Ordering::Relaxed);
}

// -------------------------------------------------------------------------
// The pool
// -------------------------------------------------------------------------

/// One submitted job: a borrowed task closure plus distribution state. The
/// `'static` on `f` is a lie told to the type system — see the SAFETY
/// comment in [`run_tasks`]; the submitter blocks until `pending` hits 0,
/// so the borrow outlives every call through it.
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    tasks: usize,
    /// Next task index to hand out.
    next: AtomicUsize,
    /// Tasks not yet completed; the submitter waits for 0.
    pending: AtomicUsize,
    /// Set when a task panicked (the submitter re-raises).
    poisoned: AtomicBool,
    done_m: Mutex<()>,
    done_cv: Condvar,
}

struct Shared {
    /// `(generation, current job)`: bumping the generation under the lock
    /// is what wakes a parked worker exactly once per job.
    slot: Mutex<(u64, Option<Arc<Job>>)>,
    cv: Condvar,
    /// Spawned worker count (monotonic; workers never exit).
    workers: AtomicUsize,
    /// Serializes submitters; `try_lock` failure = serial fallback, so no
    /// thread ever blocks on pool admission (deadlock-free by construction).
    submit: Mutex<()>,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        slot: Mutex::new((0, None)),
        cv: Condvar::new(),
        workers: AtomicUsize::new(0),
        submit: Mutex::new(()),
    })
}

/// Grabs and runs chunks of `job` until the ticket counter is exhausted.
fn execute(job: &Job, on_worker: bool) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.tasks {
            return;
        }
        // A panicking task must still decrement `pending`, or the submitter
        // would wait forever; the flag re-raises on the submitting thread.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (job.f)(i)));
        if r.is_err() {
            job.poisoned.store(true, Ordering::Relaxed);
        }
        if on_worker {
            TASKS_ON_WORKERS.fetch_add(1, Ordering::Relaxed);
        }
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = job.done_m.lock().unwrap();
            job.done_cv.notify_all();
        }
    }
}

fn worker_loop() {
    IN_POOL.with(|w| w.set(true));
    let sh = shared();
    let mut seen_gen = 0u64;
    loop {
        let job = {
            let mut s = sh.slot.lock().unwrap();
            loop {
                if s.0 != seen_gen {
                    seen_gen = s.0;
                    if let Some(j) = s.1.clone() {
                        break j;
                    }
                }
                s = sh.cv.wait(s).unwrap();
            }
        };
        execute(&job, true);
    }
}

/// Lazily grows the pool to at least `n` parked workers (capped at
/// [`MAX_WORKERS`]; workers are never torn down — they park between jobs
/// and cost nothing while idle).
fn ensure_workers(n: usize) {
    let sh = shared();
    let want = n.min(MAX_WORKERS);
    while sh.workers.load(Ordering::Relaxed) < want {
        let id = sh.workers.fetch_add(1, Ordering::Relaxed);
        if id >= want {
            sh.workers.fetch_sub(1, Ordering::Relaxed);
            break;
        }
        std::thread::Builder::new()
            .name(format!("colossal-par-{id}"))
            .spawn(worker_loop)
            .expect("spawn pool worker");
    }
}

/// Runs `f(0), f(1), .., f(tasks - 1)`, each exactly once, across the
/// submitting thread plus up to `kernel_threads() - 1` pool workers;
/// returns only when every call has completed. Falls back to the plain
/// serial loop (same calls, ascending order) when the budget is 1, there
/// is at most one task, the backend is disabled, or another thread holds
/// the pool — all bitwise-equivalent because tasks touch disjoint data.
pub fn run_tasks(tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    TASKS_TOTAL.fetch_add(tasks as u64, Ordering::Relaxed);
    let budget = crate::kernel::kernel_threads();
    if tasks <= 1 || budget <= 1 || !enabled() {
        SERIAL_FALLBACKS.fetch_add(1, Ordering::Relaxed);
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    let sh = shared();
    let _guard = match sh.submit.try_lock() {
        Ok(g) => g,
        Err(TryLockError::WouldBlock) => {
            // a nested submission (from a pool worker's task, or from the
            // submitter's own chunks) must inline whatever the policy says:
            // the pool is wedged until the outer job drains
            if contention_wait() && !IN_POOL.with(|w| w.get()) {
                CONTENDED_WAITS.fetch_add(1, Ordering::Relaxed);
                match sh.submit.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                }
            } else {
                CONTENDED_FALLBACKS.fetch_add(1, Ordering::Relaxed);
                for i in 0..tasks {
                    f(i);
                }
                return;
            }
        }
        // a submitter that re-panics after a poisoned job unwinds with the
        // guard held; the () payload carries no state, so just keep going
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
    };
    // mark this thread pooled while it owns the submit lock (reset on every
    // exit path, including the poisoned re-panic below)
    struct PoolMark;
    impl Drop for PoolMark {
        fn drop(&mut self) {
            IN_POOL.with(|w| w.set(false));
        }
    }
    IN_POOL.with(|w| w.set(true));
    let _mark = PoolMark;
    ensure_workers((budget - 1).min(tasks - 1));
    // SAFETY: `f` is only ever called between the job publication below and
    // the `pending == 0` wait before this function returns; the submitter
    // holds the submit lock for that whole window and workers call `f` only
    // through tickets drawn before `next` exhausts. A worker may keep its
    // `Arc<Job>` (and thus this dangling reference) alive after we return,
    // but can never call it again — `next >= tasks` permanently.
    let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let job = Arc::new(Job {
        f: f_static,
        tasks,
        next: AtomicUsize::new(0),
        pending: AtomicUsize::new(tasks),
        poisoned: AtomicBool::new(false),
        done_m: Mutex::new(()),
        done_cv: Condvar::new(),
    });
    {
        let mut s = sh.slot.lock().unwrap();
        s.0 += 1;
        s.1 = Some(job.clone());
    }
    sh.cv.notify_all();
    // the submitter is one of the executors — the job completes even if
    // every worker is wedged behind someone else's work
    execute(&job, false);
    {
        let mut g = job.done_m.lock().unwrap();
        while job.pending.load(Ordering::Acquire) != 0 {
            g = job.done_cv.wait(g).unwrap();
        }
    }
    {
        // drop the pool's handle so the borrowed closure is not reachable
        // from the slot after this call returns
        let mut s = sh.slot.lock().unwrap();
        s.1 = None;
    }
    JOBS.fetch_add(1, Ordering::Relaxed);
    if job.poisoned.load(Ordering::Relaxed) {
        panic!("a parallel task panicked (see stderr for the original panic)");
    }
}

// -------------------------------------------------------------------------
// Deterministic partitioning primitives
// -------------------------------------------------------------------------

/// The deterministic partition rule: splits `units` work units into
/// `(chunks, units_per_chunk)` where the chunk count depends only on
/// `(units, budget, min_units)` — never on timing. Chunk `i` covers units
/// `[i * per, min((i + 1) * per, units))`; the last chunk may be ragged.
pub fn partition(units: usize, budget: usize, min_units: usize) -> (usize, usize) {
    if units == 0 {
        return (0, 0);
    }
    let max_chunks = units.div_ceil(min_units.max(1)).max(1);
    let chunks = budget.clamp(1, max_chunks);
    let per = units.div_ceil(chunks);
    // renormalize so no chunk is empty (ceil twice can overshoot: 100 units
    // over 64 chunks gives per = 2, which only needs 50 chunks)
    (units.div_ceil(per), per)
}

/// A `Vec` of per-task items handed out once each across executors. Safety
/// rests on [`run_tasks`] calling each index exactly once.
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

// SAFETY: each slot is accessed by exactly one executor (the unique owner
// of that task index), so there is never a concurrent access to one cell.
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(items: Vec<T>) -> Self {
        Slots(
            items
                .into_iter()
                .map(|t| UnsafeCell::new(Some(t)))
                .collect(),
        )
    }

    /// # Safety
    /// Each index may be taken at most once, from one thread.
    unsafe fn take(&self, i: usize) -> T {
        unsafe { (*self.0[i].get()).take().expect("slot taken twice") }
    }

    /// # Safety
    /// Each index may be stored at most once, from one thread.
    unsafe fn put(&self, i: usize, v: T) {
        unsafe { *self.0[i].get() = Some(v) };
    }
}

/// Runs `f(i, item_i)` for every item, distributing items across the pool.
/// Items typically carry `&mut` chunk borrows produced by a deterministic
/// split, which is what makes multi-slice kernels (optimizer updates over
/// param/moment/grad triples) expressible safely.
pub fn par_items<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let slots = Slots::new(items);
    run_tasks(n, &|i| {
        // SAFETY: run_tasks hands out each index exactly once.
        let item = unsafe { slots.take(i) };
        f(i, item);
    });
}

/// Like [`par_items`] but collects each call's return value, in item order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let slots = Slots::new(items);
    let out: Slots<R> = Slots((0..n).map(|_| UnsafeCell::new(None)).collect());
    run_tasks(n, &|i| {
        // SAFETY: run_tasks hands out each index exactly once, so both the
        // input take and the output store are uniquely owned by this call.
        let item = unsafe { slots.take(i) };
        let r = f(i, item);
        unsafe { out.put(i, r) };
    });
    out.0
        .into_iter()
        .map(|c| c.into_inner().expect("par_map task skipped"))
        .collect()
}

/// Splits `data` into contiguous chunks whose boundaries are multiples of
/// `unit` elements (rows of a row-wise kernel) and runs
/// `f(element_offset, chunk)` on each, possibly in parallel. The partition
/// follows [`partition`]`(len / unit, kernel_threads(), min_elems / unit)`,
/// so it depends only on the length and the budget — results are
/// bitwise-identical to the serial sweep for any unit-independent `f`.
pub fn par_chunks_unit<F>(data: &mut [f32], unit: usize, min_elems: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let unit = unit.max(1);
    let units = data.len() / unit;
    debug_assert_eq!(data.len() % unit, 0, "data not a whole number of units");
    let min_units = min_elems.div_ceil(unit).max(1);
    let (chunks, per) = partition(units, crate::kernel::kernel_threads(), min_units);
    if chunks <= 1 {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    let mut items: Vec<(usize, &mut [f32])> = Vec::with_capacity(chunks);
    let mut off = 0;
    let mut rest = data;
    while !rest.is_empty() {
        let take = (per * unit).min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        items.push((off, head));
        rest = tail;
        off += take;
    }
    par_items(items, |_, (off, chunk)| f(off, chunk));
}

/// The core primitive of the runtime: splits `data` into contiguous chunks
/// of at least `min_chunk` elements — the partition a pure function of
/// `(len, budget)` as required by the determinism contract — and runs
/// `f(element_offset, chunk)` on each across the pool.
pub fn par_chunks_static<F>(data: &mut [f32], min_chunk: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    par_chunks_unit(data, 1, min_chunk, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_pure_and_covers() {
        for units in [0usize, 1, 5, 100, 4096, 100_000] {
            for budget in [1usize, 2, 3, 7, 64] {
                for min_units in [1usize, 8, 1000] {
                    let (chunks, per) = partition(units, budget, min_units);
                    // identical inputs always give identical partitions
                    assert_eq!((chunks, per), partition(units, budget, min_units));
                    if units == 0 {
                        assert_eq!(chunks, 0);
                        continue;
                    }
                    assert!(chunks >= 1 && chunks <= budget.max(1));
                    assert!(per * chunks >= units, "chunks must cover the range");
                    assert!(per * (chunks - 1) < units, "no empty chunk");
                }
            }
        }
    }

    #[test]
    fn run_tasks_runs_each_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        run_tasks(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(items, |i, v| {
            assert_eq!(i, v);
            v * 3
        });
        assert_eq!(out, (0..100).map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_sweep_touches_every_element_once() {
        let mut data = vec![0.0f32; 10_000];
        par_chunks_static(&mut data, 16, |off, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (off + i) as f32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn contended_wait_mode_completes_both_submitters() {
        set_contention_wait(true);
        let a: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let b: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            s.spawn(|| {
                run_tasks(a.len(), &|i| {
                    a[i].fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                });
            });
            s.spawn(|| {
                run_tasks(b.len(), &|i| {
                    b[i].fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                });
            });
        });
        set_contention_wait(false);
        assert!(a.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(b.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_submission_inlines_even_in_wait_mode() {
        set_contention_wait(true);
        let hits: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        let inner: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        // a task that submits again must inline (IN_POOL guard), not block
        // for the pool it is itself part of — this would deadlock otherwise
        run_tasks(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                run_tasks(inner.len(), &|j| {
                    inner[j].fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        set_contention_wait(false);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(inner.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn unit_chunks_respect_row_boundaries() {
        let unit = 7;
        let mut data = vec![0.0f32; unit * 61];
        par_chunks_unit(&mut data, unit, 1, |off, chunk| {
            assert_eq!(off % unit, 0);
            assert_eq!(chunk.len() % unit, 0);
            for v in chunk.iter_mut() {
                *v = 1.0;
            }
        });
        assert!(data.iter().all(|&v| v == 1.0));
    }
}
