//! Bitwise serial-vs-pool identity for every `tensor::par`-parallelized op,
//! plus concurrency stress on the persistent worker pool.
//!
//! The determinism contract (see `par` module docs / DESIGN.md §10) says
//! results never depend on the thread budget. These tests pin that down the
//! blunt way: run each op serially (budget 1), then at budgets {2, 3, 7},
//! and require `==` on the raw f32 bits.
//!
//! The thread budget and element cutoff are process-global, so every test
//! that touches them serializes on [`budget_lock`] and restores the
//! defaults before releasing it.

use colossalai_tensor::ops::{add_bias_gelu, gelu_backward, layernorm_fused, softmax_inplace};
use colossalai_tensor::par::{self, DEFAULT_PAR_CUTOFF};
use colossalai_tensor::{init, set_kernel_threads, Tensor};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn budget_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // a panicking holder doesn't invalidate the guarded globals: the next
    // test resets them anyway
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn restore_defaults() {
    set_kernel_threads(1);
    par::set_par_cutoff(DEFAULT_PAR_CUTOFF);
    par::set_enabled(true);
}

fn rand_t(shape: [usize; 2], seed: u64) -> Tensor {
    init::uniform(shape, -2.0, 2.0, &mut init::rng(seed))
}

/// Runs `op` serially, then under pool budgets {2, 3, 7} with the cutoff
/// floored so the tensors actually take the parallel path, asserting the
/// raw output bits never move.
fn assert_bitwise_across_budgets<R: PartialEq + std::fmt::Debug>(label: &str, op: impl Fn() -> R) {
    let _g = budget_lock();
    restore_defaults();
    let serial = op();
    par::set_par_cutoff(1);
    for threads in [2usize, 3, 7] {
        set_kernel_threads(threads);
        let pooled = op();
        assert_eq!(serial, pooled, "{label}: budget {threads} changed bits");
    }
    restore_defaults();
}

#[test]
fn map_is_bitwise_across_budgets() {
    let x = rand_t([64, 1024], 11);
    assert_bitwise_across_budgets("map", || {
        x.map(|v| (v * 1.3).sin() + 0.5 * v).data().to_vec()
    });
}

#[test]
fn map_inplace_is_bitwise_across_budgets() {
    let x = rand_t([64, 1024], 12);
    assert_bitwise_across_budgets("map_inplace", || {
        let mut y = x.clone();
        y.map_inplace(|v| v.tanh() * 0.9 + 0.1);
        y.data().to_vec()
    });
}

#[test]
fn zip_is_bitwise_across_budgets() {
    let a = rand_t([64, 1024], 13);
    let b = rand_t([64, 1024], 14);
    assert_bitwise_across_budgets("zip", || {
        a.zip(&b, |x, y| x * y + (x - y).exp()).data().to_vec()
    });
}

#[test]
fn cat_is_bitwise_across_budgets() {
    // dim-1 cat exercises the row-strided parallel path, dim-0 the
    // per-tensor segment path
    let a = rand_t([64, 300], 15);
    let b = rand_t([64, 200], 16);
    let c = rand_t([64, 524], 17);
    assert_bitwise_across_budgets("cat dim=1", || {
        Tensor::cat(&[a.clone(), b.clone(), c.clone()], 1)
            .data()
            .to_vec()
    });
    let d = rand_t([40, 1024], 18);
    let e = rand_t([24, 1024], 19);
    assert_bitwise_across_budgets("cat dim=0", || {
        Tensor::cat(&[d.clone(), e.clone()], 0).data().to_vec()
    });
}

#[test]
fn add_bias_gelu_and_backward_are_bitwise_across_budgets() {
    let x = rand_t([64, 1024], 21);
    let bias = init::uniform([1024], -1.0, 1.0, &mut init::rng(22));
    let dy = rand_t([64, 1024], 23);
    assert_bitwise_across_budgets("add_bias_gelu(+backward)", || {
        let (h, y) = add_bias_gelu(x.clone(), &bias);
        let dx = gelu_backward(&h, &dy);
        (h.data().to_vec(), y.data().to_vec(), dx.data().to_vec())
    });
}

#[test]
fn softmax_is_bitwise_across_budgets() {
    let x = rand_t([128, 512], 31);
    assert_bitwise_across_budgets("softmax_inplace", || {
        let mut y = x.clone();
        softmax_inplace(&mut y);
        y.data().to_vec()
    });
}

#[test]
fn layernorm_is_bitwise_across_budgets() {
    let x = rand_t([96, 768], 41);
    let gamma = init::uniform([768], 0.5, 1.5, &mut init::rng(42));
    let beta = init::uniform([768], -0.5, 0.5, &mut init::rng(43));
    assert_bitwise_across_budgets("layernorm_fused", || {
        let (y, means, inv_stds) = layernorm_fused(&x, &gamma, &beta, 1e-5);
        (y.data().to_vec(), means, inv_stds)
    });
}

#[test]
fn ragged_shapes_are_bitwise_across_budgets() {
    // odd extents so chunk boundaries land mid-row-group and the last
    // chunk is ragged
    let x = rand_t([37, 173], 51);
    assert_bitwise_across_budgets("ragged map+softmax", || {
        let m = x.map(|v| v * v - 0.25);
        let mut s = x.clone();
        softmax_inplace(&mut s);
        (m.data().to_vec(), s.data().to_vec())
    });
}

#[test]
fn budget_zero_clamps_to_one_including_pool() {
    let _g = budget_lock();
    restore_defaults();
    set_kernel_threads(0); // documented clamp: 0 means serial, never "no work"
    assert_eq!(colossalai_tensor::kernel_threads(), 1);
    par::set_par_cutoff(1);
    let before = par::stats();
    let x = rand_t([64, 1024], 61);
    let y = x.map(|v| v + 1.0);
    assert_eq!(y.data()[0], x.data()[0] + 1.0);
    // a direct submission at budget 1 takes the counted serial fallback
    par::run_tasks(4, &|_| {});
    let after = par::stats();
    // budget 1 short-circuits to the serial path: no pool jobs ran
    assert_eq!(
        before.jobs, after.jobs,
        "budget 1 must not submit pool jobs"
    );
    assert!(after.serial_fallbacks > before.serial_fallbacks);
    restore_defaults();
}

#[test]
fn par_cutoff_zero_clamps_to_one() {
    let _g = budget_lock();
    restore_defaults();
    par::set_par_cutoff(0);
    assert_eq!(par::par_cutoff(), 1, "cutoff 0 clamps like every knob");
    restore_defaults();
}

#[test]
fn disabled_backend_still_computes_and_counts_serial() {
    let _g = budget_lock();
    restore_defaults();
    set_kernel_threads(4);
    par::set_par_cutoff(1);
    par::set_enabled(false);
    let x = rand_t([64, 1024], 71);
    let want = {
        par::set_enabled(true);
        set_kernel_threads(1);
        let w = x.map(|v| v * 3.0);
        set_kernel_threads(4);
        par::set_enabled(false);
        w
    };
    let got = x.map(|v| v * 3.0);
    assert_eq!(want.data(), got.data());
    restore_defaults();
}

/// 16 simulated "device" rank threads hammer the pool concurrently, each on
/// its own data. Proves (a) no deadlock — contended submitters fall back to
/// inline serial execution rather than queueing, (b) no cross-rank result
/// coupling — every rank's outputs match the serial references computed
/// up front.
#[test]
fn sixteen_rank_threads_hammer_the_pool() {
    const RANKS: usize = 16;
    const ITERS: usize = 8;
    let _g = budget_lock();
    restore_defaults();

    let inputs: Vec<Tensor> = (0..RANKS)
        .map(|r| rand_t([48, 1024], 100 + r as u64))
        .collect();
    // serial references, one per rank, before any parallelism is enabled
    let expected: Vec<(Vec<f32>, Vec<f32>)> = inputs
        .iter()
        .map(|x| {
            let m = x.map(|v| (v * 0.7).cos() + v);
            let mut s = x.clone();
            softmax_inplace(&mut s);
            (m.data().to_vec(), s.data().to_vec())
        })
        .collect();

    set_kernel_threads(4);
    par::set_par_cutoff(1);
    std::thread::scope(|scope| {
        for (x, want) in inputs.iter().zip(&expected) {
            scope.spawn(move || {
                for _ in 0..ITERS {
                    let m = x.map(|v| (v * 0.7).cos() + v);
                    let mut s = x.clone();
                    softmax_inplace(&mut s);
                    assert_eq!(m.data(), &want.0[..], "cross-rank coupling in map");
                    assert_eq!(s.data(), &want.1[..], "cross-rank coupling in softmax");
                }
            });
        }
    });
    restore_defaults();
}

/// A panic inside a pool task propagates to the submitter instead of
/// wedging the pool, and the pool keeps working afterwards.
#[test]
fn pool_survives_a_panicking_task() {
    let _g = budget_lock();
    restore_defaults();
    set_kernel_threads(4);
    par::set_par_cutoff(1);
    let boom = std::panic::catch_unwind(|| {
        par::run_tasks(8, &|i| {
            if i == 3 {
                panic!("task boom");
            }
        });
    });
    assert!(boom.is_err(), "task panic must reach the submitter");
    // the pool still runs jobs after the poisoned one
    let x = rand_t([64, 1024], 81);
    let serial = {
        set_kernel_threads(1);
        let s = x.map(|v| v - 2.0);
        set_kernel_threads(4);
        s
    };
    assert_eq!(serial.data(), x.map(|v| v - 2.0).data());
    restore_defaults();
}
