//! Integration: the unified virtual-clock tracer across the whole stack.
//!
//! A 4-rank hybrid-parallel step (2-way data x 2-way tensor parallelism with
//! pipeline-style point-to-point traffic) must leave every rank with compute,
//! collective AND p2p spans; per-rank leaf spans must be non-overlapping and
//! monotonic; and `World::trace_json()` must be valid Chrome-trace JSON.

use colossalai::comm::{DeviceCtx, Span, SpanKind, Track, World};
use colossalai::tensor::{init, Tensor};
use colossalai::topology::systems::system_i;

const P: usize = 4;

/// One hybrid step: local "compute", TP all-gather + DP all-reduce
/// collectives, and a ring exchange of activations over send/recv.
fn hybrid_step(ctx: &DeviceCtx) {
    let rank = ctx.rank();
    // compute: charge the clock, then publish the window as a Compute span
    let start = ctx.clock();
    ctx.charge_seconds(2e-4);
    ctx.trace_span(
        SpanKind::Compute {
            label: format!("fwd{rank}"),
        },
        start,
    );

    // tensor-parallel axis: ranks {0,1} and {2,3}
    let tp = ctx.group(&[rank / 2 * 2, rank / 2 * 2 + 1]);
    let mut rng = init::rng(17 + rank as u64);
    let act = init::uniform([8, 8], -1.0, 1.0, &mut rng);
    let gathered = tp.all_gather_cat(ctx, act, 0);
    assert_eq!(gathered.dims(), &[16, 8]);

    // pipeline-style ring: rank r sends to r+1, receives from r-1
    let next = (rank + 1) % P;
    let prev = (rank + P - 1) % P;
    ctx.send(next, 7, Tensor::scalar(rank as f32));
    let got = ctx.recv(prev, 7);
    assert_eq!(got.item(), prev as f32);

    // data-parallel axis: ranks {0,2} and {1,3} average gradients
    let dp = ctx.group(&[rank % 2, rank % 2 + 2]);
    let _ = dp.all_reduce(ctx, Tensor::ones([4, 4]));
}

fn leaf_spans_of(spans: &[Span], rank: usize) -> Vec<Span> {
    let mut out: Vec<Span> = spans
        .iter()
        .filter(|s| s.track == Track::Device(rank) && !s.kind.is_phase())
        .cloned()
        .collect();
    out.sort_by(|a, b| a.start.total_cmp(&b.start));
    out
}

fn run_traced_step() -> World {
    let world = World::new(system_i());
    world.enable_tracing();
    world.run_on(P, hybrid_step);
    world
}

#[test]
fn every_rank_records_compute_collective_and_p2p_spans() {
    let world = run_traced_step();
    let spans = world.trace();
    for rank in 0..P {
        let mine = leaf_spans_of(&spans, rank);
        let has = |pred: &dyn Fn(&SpanKind) -> bool| mine.iter().any(|s| pred(&s.kind));
        assert!(
            has(&|k| matches!(k, SpanKind::Compute { .. })),
            "rank {rank} has no compute span"
        );
        assert!(
            has(&|k| matches!(k, SpanKind::Collective { .. })),
            "rank {rank} has no collective span"
        );
        assert!(
            has(&|k| matches!(k, SpanKind::P2p { .. })),
            "rank {rank} has no p2p span"
        );
    }
}

#[test]
fn per_rank_leaf_spans_are_monotonic_and_non_overlapping() {
    let world = run_traced_step();
    let spans = world.trace();
    for rank in 0..P {
        let mine = leaf_spans_of(&spans, rank);
        assert!(!mine.is_empty());
        for s in &mine {
            assert!(
                s.end >= s.start,
                "rank {rank}: span ends before it starts: {s:?}"
            );
        }
        for w in mine.windows(2) {
            assert!(
                w[1].start >= w[0].end - 1e-12,
                "rank {rank}: overlapping leaf spans {:?} and {:?}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn trace_json_is_valid_chrome_trace() {
    let world = run_traced_step();
    let json = world.trace_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("trace_json must parse as JSON");
    let events = v
        .get("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("traceEvents must be an array");
    assert!(!events.is_empty());
    // every event is either a complete span ("X") or metadata ("M"),
    // and complete spans carry non-negative timestamps and durations
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph field");
        match ph {
            "X" => {
                assert!(e.get("name").is_some());
                assert!(e.get("ts").and_then(|t| t.as_f64()).unwrap() >= 0.0);
                assert!(e.get("dur").and_then(|d| d.as_f64()).unwrap() >= 0.0);
            }
            "M" => {
                assert!(e.get("args").is_some());
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    // complete spans exist for every device track
    for rank in 0..P {
        let found = events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("pid").and_then(|p| p.as_u64()) == Some(0)
                && e.get("tid").and_then(|t| t.as_u64()) == Some(rank as u64)
        });
        assert!(found, "no complete span for device track {rank}");
    }
}

#[test]
fn clearing_resets_the_trace() {
    let world = run_traced_step();
    assert!(!world.trace().is_empty());
    world.clear_trace();
    assert!(world.trace().is_empty());
}
