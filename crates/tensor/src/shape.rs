//! Shape and stride arithmetic for dense row-major tensors.

use std::fmt;

/// The shape of a dense tensor: one extent per dimension.
///
/// A scalar is represented by an empty shape (`rank() == 0`, `numel() == 1`).
/// Shapes are always paired with contiguous row-major strides in this crate;
/// views materialize copies instead of aliasing, which keeps the kernel code
/// simple and the per-device buffers independent (important because each
/// simulated device owns its buffers outright).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// Zero-sized dimensions are allowed and yield `numel() == 0`.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Scalar shape (rank 0).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `d`. Panics if `d >= rank()`.
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major (C-order) strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1usize;
        for (s, &d) in strides.iter_mut().zip(self.0.iter()).rev() {
            *s = acc;
            acc *= d;
        }
        strides
    }

    /// Linear offset of a multi-index. Panics on rank or bounds mismatch.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank(),
            "index rank {} != shape rank {}",
            index.len(),
            self.rank()
        );
        let mut off = 0usize;
        let mut acc = 1usize;
        for (&i, &d) in index.iter().zip(self.0.iter()).rev() {
            assert!(i < d, "index {i} out of bounds for dim of extent {d}");
            off += i * acc;
            acc *= d;
        }
        off
    }

    /// Inverse of [`Shape::offset`]: the multi-index of linear element `off`.
    pub fn unravel(&self, mut off: usize) -> Vec<usize> {
        assert!(off < self.numel().max(1), "offset {off} out of bounds");
        let mut idx = vec![0; self.rank()];
        for (i, &d) in idx.iter_mut().zip(self.0.iter()).rev() {
            *i = off % d;
            off /= d;
        }
        idx
    }

    /// Returns a shape with dimension `d` replaced by `extent`.
    pub fn with_dim(&self, d: usize, extent: usize) -> Shape {
        let mut dims = self.0.clone();
        dims[d] = extent;
        Shape(dims)
    }

    /// Interprets `self` as a matrix by collapsing all leading dimensions:
    /// `[d0, .., dk, n] -> (d0*..*dk, n)`. Rank must be >= 1.
    pub fn as_matrix(&self) -> (usize, usize) {
        assert!(self.rank() >= 1, "cannot view a scalar as a matrix");
        let n = *self.0.last().unwrap();
        (self.numel() / n.max(1), n)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
    }

    #[test]
    fn offset_and_unravel_roundtrip() {
        let s = Shape::new([3, 5, 7]);
        for off in 0..s.numel() {
            let idx = s.unravel(off);
            assert_eq!(s.offset(&idx), off);
        }
    }

    #[test]
    fn as_matrix_collapses_leading() {
        let s = Shape::new([2, 3, 8]);
        assert_eq!(s.as_matrix(), (6, 8));
        let v = Shape::new([5]);
        assert_eq!(v.as_matrix(), (1, 5));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_bounds_checked() {
        Shape::new([2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn zero_extent_dim() {
        let s = Shape::new([4, 0, 2]);
        assert_eq!(s.numel(), 0);
    }

    #[test]
    fn with_dim_replaces() {
        let s = Shape::new([4, 6]).with_dim(1, 3);
        assert_eq!(s.dims(), &[4, 3]);
    }
}
