//! Interconnect link types and the alpha-beta transfer cost model.

use serde::{Deserialize, Serialize};

/// The physical technology of a link between two devices (or a device and
/// its host). Bandwidths follow the paper's measurements where it reports
/// them (Fig 10) and public datasheets otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Full NVLink connection (NVLink3-class on the paper's A100 systems).
    NvLink,
    /// PCIe path between GPUs that lack a direct NVLink (System II's distant
    /// pairs) or between GPU and host memory.
    Pcie,
    /// InfiniBand HDR (200 Gb/s) between nodes of System III.
    InfiniBandHdr,
    /// Cray Aries ASIC links of System IV.
    Aries,
    /// NVMe storage channel (offload tier).
    Nvme,
}

/// A point-to-point link with an alpha-beta cost: transferring `n` bytes
/// costs `latency + n / bandwidth` seconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    pub kind: LinkKind,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// One-way latency in seconds (the alpha term).
    pub latency: f64,
}

impl Link {
    /// NVLink as measured in Fig 10 on System I: ~184 GB/s pairwise.
    pub fn nvlink() -> Link {
        Link {
            kind: LinkKind::NvLink,
            bandwidth: 184.0e9,
            latency: 5.0e-6,
        }
    }

    /// GPU-to-GPU (or GPU-to-host) over PCIe: ~15 GB/s measured (Fig 10's
    /// collective floor on System II).
    pub fn pcie() -> Link {
        Link {
            kind: LinkKind::Pcie,
            bandwidth: 15.0e9,
            latency: 10.0e-6,
        }
    }

    /// InfiniBand HDR: 200 Gb/s line rate, ~23 GB/s sustained.
    pub fn infiniband_hdr() -> Link {
        Link {
            kind: LinkKind::InfiniBandHdr,
            bandwidth: 23.0e9,
            latency: 2.0e-6,
        }
    }

    /// Cray Aries: ~10 GB/s sustained per peer.
    pub fn aries() -> Link {
        Link {
            kind: LinkKind::Aries,
            bandwidth: 10.0e9,
            latency: 1.5e-6,
        }
    }

    /// NVMe tier for offloading.
    pub fn nvme() -> Link {
        Link {
            kind: LinkKind::Nvme,
            bandwidth: 3.0e9,
            latency: 20.0e-6,
        }
    }

    /// Seconds to move `bytes` across this link (alpha + n/B).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Effective bandwidth (bytes/s) achieved for a transfer of `bytes`,
    /// including the latency penalty — what a bandwidth probe reports.
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        bytes as f64 / self.transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_technologies() {
        assert!(Link::nvlink().bandwidth > Link::infiniband_hdr().bandwidth);
        assert!(Link::infiniband_hdr().bandwidth > Link::pcie().bandwidth);
        assert!(Link::pcie().bandwidth > Link::nvme().bandwidth);
    }

    #[test]
    fn transfer_time_alpha_beta() {
        let l = Link {
            kind: LinkKind::Pcie,
            bandwidth: 1e9,
            latency: 1e-3,
        };
        // 1 GB at 1 GB/s plus 1 ms latency
        assert!((l.transfer_time(1_000_000_000) - 1.001).abs() < 1e-9);
    }

    #[test]
    fn effective_bandwidth_approaches_peak_for_large_messages() {
        let l = Link::nvlink();
        let small = l.effective_bandwidth(1024);
        let large = l.effective_bandwidth(1 << 30);
        assert!(small < large);
        assert!(large / l.bandwidth > 0.99);
    }
}
