//! The user-facing configuration schema (Listing 1 of the paper).
//!
//! Users describe *what* acceleration they want declaratively; `initialize`
//! turns it into process groups, wrapped models and optimizers. The schema
//! mirrors the Python dict of Listing 1:
//!
//! ```json
//! {
//!   "parallel": {
//!     "tensor":   { "size": 4, "mode": "2d" },
//!     "pipeline": { "size": 2 },
//!     "data":     { "size": 1 }
//!   },
//!   "zero": { "stage": 2 },
//!   "mixed_precision": true,
//!   "activation_checkpoint": false
//! }
//! ```

use colossalai_comm::compress::{self, Compression};
use colossalai_parallel::TpMode;
use serde::{Deserialize, Serialize, Value};

/// Tensor-parallel mode names accepted in config files.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum TensorModeName {
    #[serde(rename = "1d")]
    OneD,
    #[serde(rename = "2d")]
    TwoD,
    #[serde(rename = "2.5d")]
    TwoPointFiveD,
    #[serde(rename = "3d")]
    ThreeD,
    #[serde(rename = "sequence")]
    Sequence,
}

/// Tensor-parallel section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorConfig {
    pub size: usize,
    pub mode: TensorModeName,
    /// Depth for 2.5D (ignored otherwise).
    #[serde(default = "default_depth")]
    pub depth: usize,
}

fn default_depth() -> usize {
    1
}

/// Pipeline-parallel section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    pub size: usize,
    #[serde(default = "default_micro_batches")]
    pub micro_batches: usize,
}

fn default_micro_batches() -> usize {
    4
}

/// The `parallel` section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ParallelConfig {
    #[serde(default)]
    pub tensor: Option<TensorConfig>,
    #[serde(default)]
    pub pipeline: Option<PipelineConfig>,
    /// Data-parallel degree; 0 or missing = "use all remaining devices".
    #[serde(default)]
    pub data: Option<usize>,
}

/// ZeRO section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZeroConfig {
    pub stage: u8,
}

/// A gradient-compression channel in its config spelling (`"none"`,
/// `"topk(k)"`, `"int8"`, `"fp16"`); serializes as that string. Wrapping
/// [`Compression`] keeps serde at the config boundary (and `Config: Copy`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompressSpec(pub Compression);

impl Serialize for CompressSpec {
    fn serialize_value(&self) -> Value {
        Value::Str(self.0.name())
    }
}

impl Deserialize for CompressSpec {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        let raw = String::deserialize_value(v)?;
        Compression::parse(&raw).map(CompressSpec).ok_or_else(|| {
            format!("invalid comm.compress {raw:?}: expected none|topk(k>=1)|int8|fp16")
        })
    }
}

/// Communication section: gradient-bucket sizing, backward overlap and the
/// lossy gradient channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommConfig {
    /// Gradient-sync bucket capacity in megabytes (PyTorch DDP's 25 MB
    /// default). Gradients are fused into buckets of at most this size so
    /// each bucket pays one all-reduce latency term.
    #[serde(default = "default_bucket_mb")]
    pub bucket_mb: usize,
    /// Launch each bucket's collective on the comm stream as soon as its
    /// last gradient is produced during backward (data-parallel overlap).
    #[serde(default = "default_overlap")]
    pub overlap: bool,
    /// Lossy gradient-compression channel for bucketed sync: `"none"`,
    /// `"topk(k)"`, `"int8"` or `"fp16"`, each with error feedback.
    /// Missing = keep the ambient `COLOSSAL_COMPRESS` setting (or none).
    #[serde(default)]
    pub compress: Option<CompressSpec>,
}

fn default_bucket_mb() -> usize {
    25
}

fn default_overlap() -> bool {
    true
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            bucket_mb: default_bucket_mb(),
            overlap: default_overlap(),
            compress: None,
        }
    }
}

/// Compute section: intra-op parallel runtime knobs. A value of 0 means
/// "leave the ambient setting alone" — the corresponding environment
/// variable (or the built-in default) stays in effect, so configs only
/// override what they mention.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ComputeConfig {
    /// Intra-op kernel thread budget (`set_kernel_threads`; env
    /// `COLOSSAL_KERNEL_THREADS`). 0 = keep ambient; note the runtime
    /// clamps explicit sets to at least 1.
    #[serde(default)]
    pub threads: usize,
    /// Element cutoff below which parallelized element-wise/row-wise
    /// kernels stay serial (`set_par_cutoff`; env `COLOSSAL_PAR_CUTOFF`).
    /// 0 = keep ambient.
    #[serde(default)]
    pub par_cutoff: usize,
    /// Multiply-add cutoff for threaded GEMM dispatch
    /// (`set_par_flop_cutoff`; env `COLOSSAL_PAR_FLOP_CUTOFF`). 0 = keep
    /// ambient.
    #[serde(default)]
    pub par_flop_cutoff: usize,
    /// Opt-in fast numeric mode (`set_fast_mode`; env `COLOSSAL_FAST`):
    /// FMA-fused kernels and bf16-compute GEMM on the AMP path, trading
    /// bitwise reproducibility against the deterministic default for
    /// throughput (results stay within documented ULP budgets, DESIGN.md
    /// §13). Missing = keep ambient; `true`/`false` override the env knob.
    #[serde(default)]
    pub fast: Option<bool>,
}

/// Memory section: allocator behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Recycle tensor storage through the global size-classed pool (on by
    /// default). The `COLOSSAL_POOL=off` environment variable overrides
    /// this to off regardless of the config.
    #[serde(default = "default_pool")]
    pub pool: bool,
}

fn default_pool() -> bool {
    true
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            pool: default_pool(),
        }
    }
}

/// Top-level configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct Config {
    #[serde(default)]
    pub parallel: ParallelConfig,
    #[serde(default)]
    pub zero: Option<ZeroConfig>,
    #[serde(default)]
    pub mixed_precision: bool,
    #[serde(default)]
    pub activation_checkpoint: bool,
    /// Gradient clipping threshold (0 disables).
    #[serde(default)]
    pub grad_clip: f32,
    /// Micro-batches accumulated per optimizer step (0/1 = no accumulation).
    #[serde(default)]
    pub gradient_accumulation: u32,
    /// Gradient-sync bucketing and overlap.
    #[serde(default)]
    pub comm: CommConfig,
    /// Allocator behavior (storage-pool toggle).
    #[serde(default)]
    pub mem: MemConfig,
    /// Intra-op parallel runtime (thread budget and cutoffs).
    #[serde(default)]
    pub compute: ComputeConfig,
}

impl Config {
    /// Parses a JSON config string.
    ///
    /// # Examples
    ///
    /// ```
    /// use colossalai_core::Config;
    ///
    /// let cfg = Config::from_json(
    ///     r#"{ "parallel": { "tensor": { "size": 4, "mode": "2d" } },
    ///          "mixed_precision": true }"#,
    /// ).unwrap();
    /// assert_eq!(cfg.tensor_size(), 4);
    /// assert!(cfg.mixed_precision);
    /// ```
    pub fn from_json(json: &str) -> Result<Config, String> {
        let cfg: Config = serde_json::from_str(json).map_err(|e| e.to_string())?;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Tensor-parallel degree (1 when unset).
    pub fn tensor_size(&self) -> usize {
        self.parallel.tensor.map_or(1, |t| t.size)
    }

    /// Pipeline-parallel degree (1 when unset).
    pub fn pipeline_size(&self) -> usize {
        self.parallel.pipeline.map_or(1, |p| p.size)
    }

    /// The tensor-parallel mode as the `colossalai-parallel` enum, or
    /// `None` for sequence parallelism / no tensor parallelism.
    pub fn tp_mode(&self) -> Option<TpMode> {
        let t = self.parallel.tensor?;
        Some(match t.mode {
            TensorModeName::OneD => TpMode::OneD,
            TensorModeName::TwoD => TpMode::TwoD,
            TensorModeName::TwoPointFiveD => TpMode::TwoPointFiveD { depth: t.depth },
            TensorModeName::ThreeD => TpMode::ThreeD,
            TensorModeName::Sequence => return None,
        })
    }

    /// True if the tensor section requests sequence parallelism.
    pub fn is_sequence_parallel(&self) -> bool {
        matches!(
            self.parallel.tensor,
            Some(TensorConfig {
                mode: TensorModeName::Sequence,
                ..
            })
        )
    }

    /// Validates internal consistency (grid shapes, ZeRO stage range, ...).
    pub fn validate(&self) -> Result<(), String> {
        if let Some(t) = self.parallel.tensor {
            if t.size == 0 {
                return Err("tensor parallel size must be >= 1".into());
            }
            if let Some(mode) = self.tp_mode() {
                if !mode.admits(t.size) {
                    return Err(format!(
                        "{} tensor parallelism does not admit size {} (fall back to 1d)",
                        mode.label(),
                        t.size
                    ));
                }
            }
        }
        if let Some(p) = self.parallel.pipeline {
            if p.size == 0 || p.micro_batches == 0 {
                return Err("pipeline size and micro_batches must be >= 1".into());
            }
        }
        if self.gradient_accumulation > 1 && self.zero.is_some() {
            return Err(
                "gradient accumulation with ZeRO is not supported in this reproduction".into(),
            );
        }
        if let Some(z) = self.zero {
            if !(1..=3).contains(&z.stage) {
                return Err(format!("ZeRO stage must be 1..=3, got {}", z.stage));
            }
            if self.tensor_size() > 1 {
                return Err("ZeRO combines with data parallelism only in this reproduction".into());
            }
        }
        Ok(())
    }

    /// Total devices this configuration occupies per data-parallel replica.
    pub fn devices_per_replica(&self) -> usize {
        self.tensor_size() * self.pipeline_size()
    }

    /// Gradient-sync bucket capacity in bytes.
    pub fn bucket_bytes(&self) -> usize {
        self.comm.bucket_mb << 20
    }

    /// The gradient-compression channel this config resolves to: an
    /// explicit `comm.compress` wins; a missing one defers to the ambient
    /// `COLOSSAL_COMPRESS` environment knob (resolved once per process).
    pub fn compression(&self) -> Compression {
        self.comm
            .compress
            .map_or_else(compress::env_compression, |c| c.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_style_config_parses() {
        let cfg = Config::from_json(r#"{ "parallel": { "tensor": { "size": 4, "mode": "1d" } } }"#)
            .unwrap();
        assert_eq!(cfg.tensor_size(), 4);
        assert_eq!(cfg.tp_mode(), Some(TpMode::OneD));
        assert_eq!(cfg.pipeline_size(), 1);
    }

    #[test]
    fn all_modes_parse() {
        for (name, size) in [
            ("1d", 3),
            ("2d", 4),
            ("2.5d", 8),
            ("3d", 8),
            ("sequence", 5),
        ] {
            let json = format!(
                r#"{{ "parallel": {{ "tensor": {{ "size": {size}, "mode": "{name}", "depth": 2 }} }} }}"#
            );
            let cfg = Config::from_json(&json).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(cfg.tensor_size(), size);
        }
    }

    #[test]
    fn invalid_grid_rejected() {
        let err = Config::from_json(r#"{ "parallel": { "tensor": { "size": 3, "mode": "2d" } } }"#)
            .unwrap_err();
        assert!(err.contains("does not admit"), "{err}");
    }

    #[test]
    fn zero_stage_bounds() {
        assert!(Config::from_json(r#"{ "zero": { "stage": 0 } }"#).is_err());
        assert!(Config::from_json(r#"{ "zero": { "stage": 4 } }"#).is_err());
        assert!(Config::from_json(r#"{ "zero": { "stage": 3 } }"#).is_ok());
    }

    #[test]
    fn zero_with_tensor_parallel_rejected() {
        let err = Config::from_json(
            r#"{ "parallel": { "tensor": { "size": 2, "mode": "1d" } }, "zero": { "stage": 2 } }"#,
        )
        .unwrap_err();
        assert!(err.contains("ZeRO"), "{err}");
    }

    #[test]
    fn gradient_accumulation_parses_and_guards() {
        let cfg = Config::from_json(r#"{ "gradient_accumulation": 4 }"#).unwrap();
        assert_eq!(cfg.gradient_accumulation, 4);
        assert!(
            Config::from_json(r#"{ "gradient_accumulation": 2, "zero": { "stage": 1 } }"#).is_err()
        );
    }

    #[test]
    fn defaults_are_serial() {
        let cfg = Config::from_json("{}").unwrap();
        assert_eq!(cfg.devices_per_replica(), 1);
        assert!(!cfg.mixed_precision);
        assert!(cfg.tp_mode().is_none());
    }

    #[test]
    fn comm_section_defaults_and_parses() {
        let cfg = Config::from_json("{}").unwrap();
        assert_eq!(cfg.comm.bucket_mb, 25);
        assert!(cfg.comm.overlap);
        assert_eq!(cfg.bucket_bytes(), 25 << 20);
        let cfg = Config::from_json(r#"{ "comm": { "bucket_mb": 4, "overlap": false } }"#).unwrap();
        assert_eq!(cfg.bucket_bytes(), 4 << 20);
        assert!(!cfg.comm.overlap);
        // partial section: missing keys take their defaults
        let cfg = Config::from_json(r#"{ "comm": { "bucket_mb": 1 } }"#).unwrap();
        assert!(cfg.comm.overlap);
        assert_eq!(cfg.comm.compress, None, "missing = keep ambient");
    }

    #[test]
    fn comm_compress_parses_and_rejects_garbage() {
        for (raw, want) in [
            ("none", Compression::None),
            ("int8", Compression::Int8),
            ("fp16", Compression::Fp16),
            ("topk(4096)", Compression::TopK(4096)),
        ] {
            let cfg =
                Config::from_json(&format!(r#"{{ "comm": {{ "compress": "{raw}" }} }}"#)).unwrap();
            assert_eq!(cfg.comm.compress, Some(CompressSpec(want)), "{raw}");
            assert_eq!(cfg.compression(), want, "explicit config beats ambient");
        }
        for bad in ["topk(0)", "int4", "gzip"] {
            let err = Config::from_json(&format!(r#"{{ "comm": {{ "compress": "{bad}" }} }}"#))
                .unwrap_err();
            assert!(err.contains("compress"), "{bad}: {err}");
        }
        // round-trips through serialization as the spelling string
        let cfg = Config::from_json(r#"{ "comm": { "compress": "topk(32)" } }"#).unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains(r#""compress":"topk(32)""#), "{json}");
        assert_eq!(Config::from_json(&json).unwrap(), cfg);
    }

    #[test]
    fn mem_section_defaults_and_parses() {
        let cfg = Config::from_json("{}").unwrap();
        assert!(cfg.mem.pool, "pool defaults on");
        let cfg = Config::from_json(r#"{ "mem": { "pool": false } }"#).unwrap();
        assert!(!cfg.mem.pool);
    }

    #[test]
    fn compute_section_defaults_and_parses() {
        let cfg = Config::from_json("{}").unwrap();
        assert_eq!(cfg.compute.threads, 0, "0 = keep ambient setting");
        assert_eq!(cfg.compute.par_cutoff, 0);
        assert_eq!(cfg.compute.par_flop_cutoff, 0);
        assert_eq!(cfg.compute.fast, None, "missing = keep ambient");
        let cfg = Config::from_json(
            r#"{ "compute": { "threads": 4, "par_cutoff": 1024, "par_flop_cutoff": 4096,
                              "fast": true } }"#,
        )
        .unwrap();
        assert_eq!(cfg.compute.threads, 4);
        assert_eq!(cfg.compute.par_cutoff, 1024);
        assert_eq!(cfg.compute.par_flop_cutoff, 4096);
        assert_eq!(cfg.compute.fast, Some(true));
        // partial section: missing keys stay ambient
        let cfg = Config::from_json(r#"{ "compute": { "threads": 2 } }"#).unwrap();
        assert_eq!(cfg.compute.threads, 2);
        assert_eq!(cfg.compute.par_cutoff, 0);
        assert_eq!(cfg.compute.fast, None);
        let cfg = Config::from_json(r#"{ "compute": { "fast": false } }"#).unwrap();
        assert_eq!(cfg.compute.fast, Some(false));
    }

    #[test]
    fn roundtrip_serialization() {
        let cfg = Config::from_json(
            r#"{ "parallel": { "tensor": { "size": 8, "mode": "2.5d", "depth": 2 },
                               "pipeline": { "size": 2, "micro_batches": 8 } },
                 "mixed_precision": true, "grad_clip": 1.0 }"#,
        )
        .unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        let back = Config::from_json(&json).unwrap();
        assert_eq!(cfg, back);
        assert_eq!(back.devices_per_replica(), 16);
    }
}
