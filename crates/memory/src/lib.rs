//! # colossalai-memory
//!
//! Device-memory accounting and heterogeneous-storage management for the
//! Colossal-AI reproduction:
//!
//! * [`tracker`] — live/peak byte accounting with OOM detection (the
//!   instrument behind Fig 8's range tests and Fig 12's max-batch search);
//! * [`chunk`] — PatrickStar-style chunked tensor storage with LRU GPU
//!   residency and migration cost metering;
//! * [`reuse`] — the Fig 6 FP16 parameter/gradient storage-reuse lifecycle;
//! * [`offload`] — DeepSpeed-static vs Colossal-adaptive placement planning
//!   for ZeRO-offload training (Fig 14).

pub mod chunk;
pub mod offload;
pub mod reuse;
pub mod tracker;

pub use chunk::{ChunkManager, MoveCost, TensorRef, Tier};
pub use offload::{plan, plan_tiered, ModelData, OffloadPlan, PlacementPolicy, TieredPlan};
pub use reuse::{Holds, ReusableBuffer};
pub use tracker::{MemoryTracker, OomError};
