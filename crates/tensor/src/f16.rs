//! Software IEEE 754 binary16 ("half precision").
//!
//! Mixed-precision training (Section 3.2 of the paper: FP16 parameters whose
//! storage is reused for FP16 gradients) needs a faithful half type. We
//! implement conversion with round-to-nearest-even and denormal support; all
//! arithmetic routes through `f32`, exactly like GPU half units with fp32
//! accumulate.

/// IEEE 754 binary16 value stored as its bit pattern.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(pub u16);

impl F16 {
    pub const ZERO: F16 = F16(0);
    pub const ONE: F16 = F16(0x3C00);
    pub const INFINITY: F16 = F16(0x7C00);
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite f16 (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal f16 (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> F16 {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x7F_FFFF;

        if exp == 0xFF {
            // Inf / NaN
            return if mant == 0 {
                F16(sign | 0x7C00)
            } else {
                F16(sign | 0x7E00)
            };
        }
        // unbiased exponent
        let e = exp - 127;
        if e > 15 {
            // overflow -> inf
            return F16(sign | 0x7C00);
        }
        if e >= -14 {
            // normal range: 10-bit mantissa, round to nearest even on bit 13
            let half_exp = ((e + 15) as u16) << 10;
            let mant10 = (mant >> 13) as u16;
            let round_bit = (mant >> 12) & 1;
            let sticky = mant & 0xFFF;
            let mut h = sign | half_exp | mant10;
            if round_bit == 1 && (sticky != 0 || (mant10 & 1) == 1) {
                h += 1; // may carry into exponent, which is correct behavior
            }
            return F16(h);
        }
        if e >= -24 {
            // subnormal half
            let full_mant = mant | 0x80_0000; // implicit leading 1
            let shift = (-14 - e) as u32 + 13;
            let mant10 = (full_mant >> shift) as u16;
            let round_bit = (full_mant >> (shift - 1)) & 1;
            let sticky = full_mant & ((1 << (shift - 1)) - 1);
            let mut h = sign | mant10;
            if round_bit == 1 && (sticky != 0 || (mant10 & 1) == 1) {
                h += 1;
            }
            return F16(h);
        }
        // underflow -> signed zero
        F16(sign)
    }

    /// Converts to `f32` exactly (every f16 is representable in f32).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x3FF) as u32;
        let bits = if exp == 0 {
            if mant == 0 {
                sign // signed zero
            } else {
                // subnormal: normalize
                let mut e = -14i32;
                let mut m = mant;
                while m & 0x400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x3FF;
                sign | (((e + 127) as u32) << 23) | (m << 13)
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mant << 13) // inf / nan
        } else {
            sign | ((exp + 112) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x3FF) != 0
    }

    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }
}

impl std::fmt::Debug for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

/// Quantizes an `f32` slice to half and back — the canonical "cast to fp16"
/// used by the mixed-precision engine.
pub fn round_trip_f16(data: &mut [f32]) {
    for x in data {
        *x = F16::from_f32(*x).to_f32();
    }
}

/// Packs an `f32` slice into half-precision bit patterns (storage format for
/// the offload engine's fp16 buffers).
pub fn pack_f16(data: &[f32]) -> Vec<u16> {
    data.iter().map(|&x| F16::from_f32(x).0).collect()
}

/// Unpacks half-precision bit patterns to `f32`.
pub fn unpack_f16(bits: &[u16]) -> Vec<f32> {
    bits.iter().map(|&b| F16(b).to_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_roundtrip() {
        for &x in &[
            0.0f32,
            1.0,
            -1.0,
            0.5,
            2.0,
            65504.0,
            -65504.0,
            0.000061035156, /* 2^-14 */
        ] {
            let h = F16::from_f32(x);
            assert_eq!(h.to_f32(), x, "roundtrip of {x}");
        }
    }

    #[test]
    fn special_values() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY), F16::NEG_INFINITY);
        assert_eq!(F16::from_f32(1e10), F16::INFINITY); // overflow
        assert_eq!(F16::from_f32(-1e10), F16::NEG_INFINITY);
        assert_eq!(F16::from_f32(0.0).0, 0);
        assert_eq!(F16::from_f32(-0.0).0, 0x8000);
    }

    #[test]
    fn subnormals() {
        // smallest positive subnormal = 2^-24
        let tiny = 2.0f32.powi(-24);
        let h = F16::from_f32(tiny);
        assert_eq!(h.0, 1);
        assert_eq!(h.to_f32(), tiny);
        // underflow below half of the smallest subnormal
        assert_eq!(F16::from_f32(2.0f32.powi(-26)).0, 0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly between 1.0 and the next representable
        // half (1 + 2^-10); ties go to even mantissa (1.0).
        let x = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(x).to_f32(), 1.0);
        // 1 + 3*2^-11 ties to 1 + 2^-10 * 2 (even)
        let y = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(y).to_f32(), 1.0 + 2.0 * 2.0f32.powi(-10));
        // above the tie rounds up
        let z = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-18);
        assert_eq!(F16::from_f32(z).to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn mantissa_carry_into_exponent() {
        // just under 2.0: rounds up to exactly 2.0 (mantissa overflow carries)
        let x = 1.9999999f32;
        assert_eq!(F16::from_f32(x).to_f32(), 2.0);
        // just under 65520 rounds to inf (65504 is max finite)
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
        assert_eq!(F16::from_f32(65519.996), F16::MAX);
    }

    #[test]
    fn pack_unpack() {
        let data = vec![0.1f32, -2.5, 1024.0, 7.7125];
        let packed = pack_f16(&data);
        let unpacked = unpack_f16(&packed);
        for (a, b) in data.iter().zip(unpacked.iter()) {
            assert!((a - b).abs() / a.abs().max(1.0) < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_error_within_half_ulp() {
        // quantization error of normal values is <= 2^-11 relative
        let mut v: Vec<f32> = (1..2000).map(|i| i as f32 * 0.3127).collect();
        let orig = v.clone();
        round_trip_f16(&mut v);
        for (a, b) in orig.iter().zip(v.iter()) {
            assert!((a - b).abs() <= a.abs() * 2.0f32.powi(-11) + 1e-8);
        }
    }
}
