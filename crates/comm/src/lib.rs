//! # colossalai-comm
//!
//! Thread-backed collective communication for the simulated cluster.
//!
//! Every simulated GPU is an OS thread holding a [`world::DeviceCtx`].
//! Collectives ([`group::Group`]) move real tensors between threads — so all
//! distributed arithmetic in the workspace is numerically real — while
//! charging *virtual* time from the alpha-beta ring model of
//! `colossalai-topology` and recording element-hop traffic that matches the
//! closed-form communication volumes of Table 1 in the paper.

pub mod group;
pub mod stats;
pub mod trace;
pub mod world;

pub use colossalai_topology::AllReduceAlgo;
pub use group::{Group, Wire};
pub use stats::{CommStats, OpKind};
pub use trace::{RankRollup, Span, SpanKind, Track};
pub use world::{DeviceCtx, World};
